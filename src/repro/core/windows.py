"""Window extraction and labelling (Dataset Creation, Section III-A).

For each cipher trace of length ``L`` the first ``N`` samples starting at
the CO beginning are the one ``c1`` ("beginning of the CO") window; the
remaining ``L - N`` samples are split into consecutive non-overlapping
``N``-sample windows labelled ``c0``.  Noise traces contribute randomly
positioned ``c0`` windows.  Windows are standardised (zero mean / unit
variance) individually, so the classifier sees shape, not absolute power.
"""

from __future__ import annotations

import numpy as np

from repro.signalproc import standardize

__all__ = [
    "CLASS_NOT_START",
    "CLASS_START",
    "extract_cipher_windows",
    "extract_start_windows",
    "extract_interior_windows",
    "extract_noise_windows",
    "label_windows",
]

CLASS_NOT_START = 0
CLASS_START = 1


def extract_cipher_windows(
    trace: np.ndarray,
    co_start: int,
    window: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Split one profiling cipher trace into (start_window, rest_windows).

    Parameters
    ----------
    trace:
        The captured trace, including any NOP prologue.
    co_start:
        Ground-truth sample index of the CO beginning (from the NOP
        boundary in the profiling capture).
    window:
        Window size ``N``.

    Returns
    -------
    (start, rest):
        ``start`` has shape ``(window,)``; ``rest`` has shape
        ``(n_rest, window)`` with the consecutive post-start windows.
    """
    trace = np.asarray(trace, dtype=np.float32)
    if window < 2:
        raise ValueError("window must be >= 2")
    if not 0 <= co_start <= trace.size - window:
        raise ValueError(
            f"co_start {co_start} leaves no full {window}-sample window in a "
            f"{trace.size}-sample trace"
        )
    start = trace[co_start: co_start + window].copy()
    tail = trace[co_start + window:]
    n_rest = tail.size // window
    rest = tail[: n_rest * window].reshape(n_rest, window).copy()
    return start, rest


def extract_start_windows(
    trace: np.ndarray,
    co_start: int,
    window: int,
    jitter: int,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` c1 windows starting within ``[co_start, co_start+jitter)``.

    At inference the slicer lands a window anywhere within one stride of
    the true start; sampling the c1 class over the same offset range makes
    the training distribution match what the sliding-window classifier will
    actually score (``jitter`` is normally the stride ``s``).  The first
    window is always the exact start, so ``count=1, jitter=anything``
    degenerates to the paper's literal labelling.
    """
    trace = np.asarray(trace, dtype=np.float32)
    if count < 1:
        raise ValueError("count must be >= 1")
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    offsets = [0]
    if count > 1 and jitter > 0:
        offsets.extend(int(v) for v in rng.integers(0, jitter, count - 1))
    elif count > 1:
        offsets.extend([0] * (count - 1))
    out = []
    for offset in offsets:
        begin = co_start + offset
        if begin + window > trace.size:
            begin = max(0, trace.size - window)
        out.append(trace[begin: begin + window])
    return np.stack(out)


def extract_interior_windows(
    trace: np.ndarray,
    co_start: int,
    window: int,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` c0 windows at random offsets inside the CO body.

    Random placement (instead of the grid of :func:`extract_cipher_windows`)
    exposes the classifier to every phase alignment it will meet at
    inference time.  Windows start at least one window past the CO start,
    so none of them qualifies as "beginning of the CO".
    """
    trace = np.asarray(trace, dtype=np.float32)
    lo = co_start + window
    hi = trace.size - window
    if hi <= lo:
        return np.zeros((0, window), dtype=np.float32)
    starts = rng.integers(lo, hi + 1, size=count)
    idx = starts[:, None] + np.arange(window)[None, :]
    return trace[idx]


def extract_noise_windows(
    trace: np.ndarray,
    window: int,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` random ``window``-sample slices from a noise trace."""
    trace = np.asarray(trace, dtype=np.float32)
    if window < 2:
        raise ValueError("window must be >= 2")
    if trace.size < window:
        raise ValueError(f"noise trace ({trace.size}) shorter than window ({window})")
    if count < 0:
        raise ValueError("count must be non-negative")
    starts = rng.integers(0, trace.size - window + 1, size=count)
    idx = starts[:, None] + np.arange(window)[None, :]
    return trace[idx]


def label_windows(
    start_windows: np.ndarray,
    other_windows: np.ndarray,
    normalize: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Stack c1/c0 windows into CNN inputs ``(n, 1, N)`` and labels ``(n,)``."""
    start_windows = np.atleast_2d(np.asarray(start_windows, dtype=np.float32))
    other_windows = np.atleast_2d(np.asarray(other_windows, dtype=np.float32))
    if start_windows.size and other_windows.size:
        if start_windows.shape[1] != other_windows.shape[1]:
            raise ValueError("window sizes differ between classes")
    x = np.concatenate([start_windows, other_windows], axis=0)
    if normalize:
        x = standardize(x, axis=1).astype(np.float32)
    y = np.concatenate(
        [
            np.full(start_windows.shape[0], CLASS_START, dtype=np.int64),
            np.full(other_windows.shape[0], CLASS_NOT_START, dtype=np.int64),
        ]
    )
    return x[:, None, :], y
