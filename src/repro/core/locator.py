"""End-to-end CO locator: the two-phase workflow of Figure 1.

Training phase: profile the clone device (cipher traces with NOP prologues
plus a noise trace), assemble the c0/c1 window database, train the 1D
ResNet with Adam and best-validation selection.

Inference phase: score an unknown trace with the sliding-window classifier,
segment the score signal, and cut/align the located COs so a CPA can be
mounted.

The locator also owns the *normalisation calibration*: an affine transform
(mean/std of the profiling data) applied identically to training windows
and inference traces, playing the role of the fixed scope gain of the real
measurement setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import PipelineConfig
from repro.core.dataset import build_window_dataset
from repro.core.model import LocatorCNN, build_locator_cnn
from repro.core.segmentation import SegmentationConfig, segment_regions
from repro.core.sliding_window import SlidingWindowClassifier
from repro.core.alignment import align_cos
from repro.nn import Adam, Trainer, TrainHistory
from repro.nn.data import ArrayDataset
from repro.nn.metrics import normalized_confusion
from repro.soc.platform import CipherTrace, SessionTrace, SimulatedPlatform

__all__ = ["CryptoLocator", "LocatorResult"]

_EPS = 1e-9


@dataclass
class LocatorResult:
    """Everything the inference pipeline produced for one trace."""

    starts: np.ndarray          # located CO start samples
    swc: np.ndarray             # sliding-window classification signal
    window_offsets: np.ndarray  # sample offset of each swc entry
    stride: int

    def __len__(self) -> int:
        return int(self.starts.size)


@dataclass
class _Calibration:
    mean: float = 0.0
    std: float = 1.0

    def __call__(self, trace: np.ndarray) -> np.ndarray:
        return ((np.asarray(trace, dtype=np.float32) - self.mean)
                / max(self.std, _EPS)).astype(np.float32)


class CryptoLocator:
    """Deep-learning locator of cryptographic operations (the paper's tool)."""

    def __init__(self, config: PipelineConfig, seed: int | None = 0) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)
        self.cnn = LocatorCNN(
            build_locator_cnn(kernel_size=config.kernel_size, rng=self._rng)
        )
        self.calibration = _Calibration()
        self.history: TrainHistory | None = None
        self.test_set: ArrayDataset | None = None
        self.threshold: float = config.threshold if config.threshold is not None else 0.0
        #: Mean CO length (samples) estimated from the profiling captures;
        #: used to suppress physically impossible double detections.
        self.co_length: int = 0
        #: Systematic offset of the raw rising edge with respect to the true
        #: CO start, estimated on the clone device (see calibrate_bias).
        self.start_bias: int = 0
        self._fitted = False

    # ------------------------------------------------------------------ #
    # training phase                                                     #
    # ------------------------------------------------------------------ #

    def fit(
        self,
        cipher_traces: list[CipherTrace],
        noise_trace: np.ndarray,
        boundary_session: SessionTrace | None = None,
        verbose: bool = False,
    ) -> TrainHistory:
        """Run the full training pipeline on profiling captures.

        ``boundary_session`` is an optional clone capture of back-to-back
        CO executions; windows straddling its CO boundaries teach the
        classifier the consecutive-execution scenario of Section IV-B (the
        threat model lets the attacker run any software on the clone, so
        such a capture costs nothing).

        The window database is built from batched captures:
        :meth:`fit_from_platform` profiles the clone through the
        platform's vectorized batch path (``capture_cipher_traces``), which
        is bit-identical to — and several times faster than — the scalar
        capture loop.
        """
        cfg = self.config
        needed = self.required_profiling_traces()
        if len(cipher_traces) < needed:
            raise ValueError(
                f"need {needed} cipher traces for the configured start-window "
                f"population, got {len(cipher_traces)}"
            )
        cipher_traces = cipher_traces[:needed]
        self.co_length = int(
            np.mean([c.trace.size - c.co_start for c in cipher_traces])
        )
        self._calibrate(cipher_traces, noise_trace)
        dataset = build_window_dataset(
            cipher_traces,
            noise_trace,
            window=cfg.n_train,
            n_rest=cfg.n_rest_windows,
            n_noise=cfg.n_noise_windows,
            rng=self._rng,
            transform=self.calibration,
            start_jitter=2 * cfg.stride,
            starts_per_trace=cfg.start_augmentation,
            rest_mode=cfg.rest_mode,
        )
        if boundary_session is not None:
            extra_x, extra_y = self._boundary_windows(boundary_session)
            if extra_x.size:
                dataset.x = np.concatenate([dataset.x, extra_x], axis=0)
                dataset.y = np.concatenate([dataset.y, extra_y], axis=0)
        train, val, test = dataset.split(rng=self._rng)
        self.test_set = test
        trainer = Trainer(
            self.cnn.network,
            Adam(self.cnn.network.parameters(), lr=cfg.learning_rate),
            rng=self._rng,
        )
        self.history = trainer.fit(
            train, val, epochs=cfg.epochs, batch_size=cfg.batch_size, verbose=verbose
        )
        if cfg.threshold is None:
            self.threshold = self._calibrate_threshold(val)
        self._fitted = True
        return self.history

    def _calibrate_threshold(self, val: ArrayDataset) -> float:
        """Pick the segmentation threshold from the validation margins.

        The paper determines the threshold experimentally.  Here it is set
        between a low quantile of the c1 ("beginning of CO") validation
        scores and a high quantile of the c0 scores: low enough that nearly
        every genuine start region crosses it (a missed CO cannot be
        recovered downstream), high enough that isolated noise excursions —
        whose single-window spikes the median filter then removes — stay
        rare.
        """
        scores = self.cnn.scores(val.x, mode=self.config.score_mode)
        labels = np.asarray(val.y)
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        if pos.size == 0 or neg.size == 0:
            return 0.0
        recall_floor = float(np.quantile(pos, 0.04))
        fp_ceiling = float(np.quantile(neg, 0.995))
        if recall_floor > fp_ceiling:
            # Sit closer to the noise ceiling than to the c1 floor: a missed
            # CO is unrecoverable, while an occasional noise plateau is
            # removed by the median filter / strength suppression.
            return fp_ceiling + 0.35 * (recall_floor - fp_ceiling)
        # Distributions overlap: fall back to the midpoint of the medians.
        return 0.5 * (float(np.median(pos)) + float(np.median(neg)))

    def required_profiling_traces(self) -> int:
        """Cipher captures needed to fill the c1 population."""
        cfg = self.config
        return -(-cfg.n_start_windows // cfg.start_augmentation)  # ceil div

    def fit_from_platform(
        self,
        platform: SimulatedPlatform,
        noise_ops: int = 60_000,
        boundary_cos: int = 48,
        verbose: bool = False,
        batch_size: int | None = None,
    ) -> TrainHistory:
        """Profile a clone platform and train (captures + fit in one call).

        Profiling goes through the platform's batched capture path;
        ``batch_size`` bounds traces per batched synthesis call (platform
        default when ``None``) without changing the captured values.
        """
        captures = platform.capture_cipher_traces(
            self.required_profiling_traces(),
            nop_header=self.config.nop_header,
            batch_size=batch_size,
        )
        noise_trace = platform.capture_noise_trace(noise_ops)
        boundary = (
            platform.capture_session_trace(boundary_cos, noise_interleaved=False)
            if boundary_cos > 0
            else None
        )
        history = self.fit(captures, noise_trace, boundary_session=boundary,
                           verbose=verbose)
        self.calibrate_bias(platform)
        return history

    def _boundary_windows(self, session: SessionTrace) -> tuple[np.ndarray, np.ndarray]:
        """c1/c0 windows around the CO boundaries of a back-to-back session.

        Per CO: two c1 windows starting within two strides after the true
        start (the start of a CO whose *predecessor* is another CO) and two
        c0 windows straddling the boundary from the left (content = previous
        CO tail + this CO head — not a beginning).
        """
        cfg = self.config
        trace = self.calibration(session.trace)
        n = cfg.n_train
        xs: list[np.ndarray] = []
        ys: list[int] = []
        for true_start in session.true_starts:
            start = int(true_start)
            offsets = [0] + [
                int(self._rng.integers(1, 3 * cfg.stride)) for _ in range(2)
            ]
            for offset in offsets:
                begin = start + offset
                if 0 <= begin and begin + n <= trace.size:
                    xs.append(trace[begin: begin + n])
                    ys.append(1)
            for _ in range(2):
                back = int(self._rng.integers(3 * cfg.stride, max(n, 6 * cfg.stride)))
                begin = start - back
                if 0 <= begin and begin + n <= trace.size:
                    xs.append(trace[begin: begin + n])
                    ys.append(0)
        if not xs:
            return np.zeros((0, 1, n), dtype=np.float32), np.zeros(0, dtype=np.int64)
        x = np.stack(xs)[:, None, :].astype(np.float32)
        y = np.asarray(ys, dtype=np.int64)
        return x, y

    def calibrate_bias(self, platform: SimulatedPlatform, n_cos: int = 8) -> int:
        """Estimate the systematic rising-edge offset on the clone device.

        The global-average-pooled classifier fires once a window's *content
        mix* crosses its decision boundary, which places the rising edge a
        roughly constant number of samples away from the true start.  The
        threat model gives the attacker a clone they can run chosen
        sessions on, so the offset is directly measurable: locate COs in
        short clone sessions with known ground truth and take the median
        residual.  The offset is then subtracted from every located start.
        """
        self._require_fitted()
        residuals: list[int] = []
        for interleaved in (True, False):
            session = platform.capture_session_trace(
                n_cos, noise_interleaved=interleaved
            )
            located = self._locate_raw(session.trace)
            for true in session.true_starts:
                if located.size == 0:
                    continue
                delta = located - true
                best = int(np.argmin(np.abs(delta)))
                if abs(int(delta[best])) <= max(self.co_length // 2, 1):
                    residuals.append(int(delta[best]))
        self.start_bias = int(np.median(residuals)) if residuals else 0
        return self.start_bias

    def test_confusion(self) -> np.ndarray:
        """Row-normalised test confusion matrix in percent (Figure 3)."""
        if self.test_set is None:
            raise RuntimeError("locator has not been fitted")
        windows = self.test_set.x
        predictions = self.cnn.predict(windows)
        return normalized_confusion(self.test_set.y, predictions)

    # ------------------------------------------------------------------ #
    # inference phase                                                    #
    # ------------------------------------------------------------------ #

    def locate_result(self, trace: np.ndarray, method: str = "windowed") -> LocatorResult:
        """Full inference pipeline; keeps the intermediate ``swc`` signal."""
        self._require_fitted()
        cfg = self.config
        classifier = SlidingWindowClassifier(
            self.cnn,
            window=cfg.n_inf,
            stride=cfg.stride,
            score_mode=cfg.score_mode,
            method=method,
        )
        normalized = self.calibration(trace)
        swc = classifier.score_trace(normalized)
        regions = segment_regions(
            swc,
            stride=cfg.stride,
            config=SegmentationConfig(
                threshold=self.threshold,
                mf_size=cfg.mf_size,
                onset_mode="peak_fraction",
            ),
        )
        regions = self._suppress_double_detections(regions)
        starts = np.asarray([r.onset for r in regions], dtype=np.int64)
        if self.start_bias:
            starts = np.maximum(starts - self.start_bias, 0)
        return LocatorResult(
            starts=starts,
            swc=swc,
            window_offsets=classifier.window_offsets(trace.size),
            stride=cfg.stride,
        )

    def locate(self, trace: np.ndarray, method: str = "windowed") -> np.ndarray:
        """CO start samples in an unknown trace.

        The default ``windowed`` engine scores standalone zero-padded
        windows exactly as the CNN saw them during training (and exactly as
        Section III-C describes).  ``dense`` is tens of times faster but
        feeds windows full-trace context, which costs accuracy when COs run
        back to back (see the engine ablation benchmark).
        """
        return self.locate_result(trace, method=method).starts

    def locate_many(
        self,
        traces,
        method: str = "windowed",
        batch_size: int | None = None,
    ) -> list[np.ndarray]:
        """Locate COs in several traces through one batched scoring pass.

        With the ``dense`` engine the convolutional trunk runs over a whole
        batch of (zero-padded) traces at once
        (:meth:`SlidingWindowClassifier.score_batch`), which is the fast
        path for scenario sweeps; ``windowed`` scores traces independently
        with the training-faithful engine.  ``batch_size`` bounds how many
        traces share one trunk pass (all at once when ``None``).
        Segmentation and post-processing are identical to :meth:`locate`.
        """
        self._require_fitted()
        traces = list(traces)
        if not traces:
            return []
        cfg = self.config
        classifier = SlidingWindowClassifier(
            self.cnn,
            window=cfg.n_inf,
            stride=cfg.stride,
            score_mode=cfg.score_mode,
            method=method,
        )
        chunk = len(traces) if batch_size is None else max(1, int(batch_size))
        starts: list[np.ndarray] = []
        for begin in range(0, len(traces), chunk):
            normalized = [
                self.calibration(t) for t in traces[begin: begin + chunk]
            ]
            for swc in classifier.score_batch(normalized):
                starts.append(self.starts_from_swc(swc))
        return starts

    def starts_from_swc(
        self,
        swc: np.ndarray,
        threshold: float | None = None,
        use_median_filter: bool = True,
        onset_mode: str = "peak_fraction",
    ) -> np.ndarray:
        """Re-run segmentation + post-processing on a precomputed ``swc``.

        Lets ablation studies vary one segmentation knob at a time without
        re-scoring the trace.
        """
        self._require_fitted()
        regions = segment_regions(
            swc,
            stride=self.config.stride,
            config=SegmentationConfig(
                threshold=self.threshold if threshold is None else threshold,
                mf_size=self.config.mf_size,
                use_median_filter=use_median_filter,
                onset_mode=onset_mode,
            ),
        )
        regions = self._suppress_double_detections(regions)
        starts = np.asarray([r.onset for r in regions], dtype=np.int64)
        if self.start_bias:
            starts = np.maximum(starts - self.start_bias, 0)
        return starts

    def _locate_raw(self, trace: np.ndarray) -> np.ndarray:
        """Locate without bias correction (used by the bias calibration)."""
        saved = self.start_bias
        self.start_bias = 0
        try:
            return self.locate(trace)
        finally:
            self.start_bias = saved

    def _suppress_double_detections(self, regions: list) -> list:
        """Resolve detections impossibly close to each other.

        Two COs cannot overlap, so detections within ~60 % of the profiled
        CO length must come from the same CO (or from a noise excursion
        next to it).  The *strongest* plateau wins: true starts produce
        much taller score plateaus than residual noise.
        """
        if len(regions) < 2 or self.co_length <= 0:
            return regions
        min_separation = int(0.6 * self.co_length)
        order = sorted(range(len(regions)), key=lambda i: -regions[i].peak)
        kept_positions: list[int] = []
        kept_indices: list[int] = []
        for index in order:
            onset = regions[index].onset
            if all(abs(onset - p) >= min_separation for p in kept_positions):
                kept_positions.append(onset)
                kept_indices.append(index)
        return [regions[i] for i in sorted(kept_indices)]

    def align(
        self,
        trace: np.ndarray,
        starts: np.ndarray | None = None,
        length: int | None = None,
        refine: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cut and stack the located COs (Alignment block of Figure 1).

        Returns ``(segments, kept)`` — see :func:`repro.core.alignment.align_cos`.
        ``length`` defaults to twice the inference window, enough to cover
        the first rounds a CPA needs.
        """
        self._require_fitted()
        if starts is None:
            starts = self.locate(trace)
        if length is None:
            length = 2 * self.config.n_inf
        return align_cos(
            trace,
            starts,
            length,
            refine=refine,
            max_shift=self.config.stride if refine else 0,
        )

    # ------------------------------------------------------------------ #
    # persistence                                                        #
    # ------------------------------------------------------------------ #

    def save(self, path) -> None:
        """Persist the trained locator (weights + all calibrations) as .npz.

        The pipeline configuration is stored alongside the network state so
        :meth:`load` can verify it is restoring into a compatible locator.
        """
        self._require_fitted()
        state = {f"net.{k}": v for k, v in self.cnn.network.state_dict().items()}
        state["meta.calibration"] = np.array(
            [self.calibration.mean, self.calibration.std], dtype=np.float64
        )
        state["meta.threshold"] = np.array([self.threshold], dtype=np.float64)
        state["meta.co_length"] = np.array([self.co_length], dtype=np.int64)
        state["meta.start_bias"] = np.array([self.start_bias], dtype=np.int64)
        state["meta.config"] = np.array(
            [self.config.cipher, str(self.config.n_train), str(self.config.n_inf),
             str(self.config.stride), str(self.config.kernel_size)]
        )
        np.savez(path, **state)

    def load(self, path) -> "CryptoLocator":
        """Restore a locator saved with :meth:`save` (config must match)."""
        with np.load(path) as archive:
            state = {key: archive[key] for key in archive.files}
        meta_config = state.pop("meta.config")
        expected = [self.config.cipher, str(self.config.n_train),
                    str(self.config.n_inf), str(self.config.stride),
                    str(self.config.kernel_size)]
        if list(meta_config) != expected:
            raise ValueError(
                f"saved locator was built for {list(meta_config)}, "
                f"this one is configured for {expected}"
            )
        mean, std = state.pop("meta.calibration")
        self.calibration = _Calibration(mean=float(mean), std=float(std))
        self.threshold = float(state.pop("meta.threshold")[0])
        self.co_length = int(state.pop("meta.co_length")[0])
        self.start_bias = int(state.pop("meta.start_bias")[0])
        network_state = {k[len("net."):]: v for k, v in state.items()}
        self.cnn.network.load_state_dict(network_state)
        self.cnn.network.eval()
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #

    def _calibrate(self, cipher_traces: list[CipherTrace], noise_trace: np.ndarray) -> None:
        sample_pool = [noise_trace[: 200_000]]
        for capture in cipher_traces[:64]:
            sample_pool.append(capture.trace)
        pool = np.concatenate([np.asarray(t, dtype=np.float64) for t in sample_pool])
        self.calibration = _Calibration(mean=float(pool.mean()), std=float(pool.std()))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("locator has not been fitted; call fit() first")
