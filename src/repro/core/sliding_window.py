"""Sliding Window Classification (Section III-C).

The Slicing block cuts the inference trace into ``N_inf``-sample windows
every ``stride`` samples; the trained CNN scores each window; the resulting
signal ``swc`` (one score per window position) feeds the segmentation stage.

Two scoring engines with identical semantics are provided:

* ``windowed`` — the literal method: materialise every window, run the CNN
  on each.  Faithful but does O(N/s) redundant convolution work.
* ``dense`` (default) — exploits that every layer before global average
  pooling is translation-equivariant: run the convolutional trunk *once*
  over the whole trace (in bounded-memory chunks), then evaluate each
  window's global average with a prefix sum and push only the pooled
  32-vector through the fully-connected head.  This is tens of times
  faster and differs from ``windowed`` only at window borders (full-trace
  context instead of per-window zero padding); the test suite bounds the
  difference and the segmentation results agree.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import LocatorCNN, scores_from_logits
from repro.nn import GlobalAvgPool1d, Sequential
from repro.nn.layers import Conv1d

__all__ = ["SlidingWindowClassifier"]


def _collect_kernel_extent(module) -> int:
    """Total (kernel-1) mass of all Conv1d layers in a subtree.

    A safe upper bound on the half receptive field of the trunk, used as
    the chunk-overlap margin of the dense engine.
    """
    extent = 0
    if isinstance(module, Conv1d):
        extent += module.kernel_size - 1
    for _, child in module.children():
        extent += _collect_kernel_extent(child)
    return extent


class SlidingWindowClassifier:
    """Scores a trace with the trained CNN at a fixed window and stride."""

    def __init__(
        self,
        cnn: LocatorCNN,
        window: int,
        stride: int,
        score_mode: str = "margin",
        method: str = "dense",
        batch_size: int = 512,
        chunk_size: int = 65_536,
    ) -> None:
        if window < 8:
            raise ValueError("window must be >= 8")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        if method not in ("dense", "windowed"):
            raise ValueError(f"unknown method {method!r}")
        self.cnn = cnn
        self.window = int(window)
        self.stride = int(stride)
        self.score_mode = score_mode
        self.method = method
        self.batch_size = int(batch_size)
        self.chunk_size = int(chunk_size)
        network = cnn.network
        gap_index = next(
            (i for i, step in enumerate(network.steps) if isinstance(step, GlobalAvgPool1d)),
            None,
        )
        if gap_index is None:
            raise ValueError("locator network must contain a GlobalAvgPool1d stage")
        self._trunk = Sequential(*network.steps[:gap_index])
        self._head = Sequential(*network.steps[gap_index + 1:])
        self._margin = _collect_kernel_extent(self._trunk)

    # ------------------------------------------------------------------ #

    def num_windows(self, trace_length: int) -> int:
        """Number of window positions the slicer produces for a trace."""
        if trace_length < self.window:
            return 0
        return (trace_length - self.window) // self.stride + 1

    def window_offsets(self, trace_length: int) -> np.ndarray:
        """Sample offset of each window position."""
        return np.arange(self.num_windows(trace_length), dtype=np.int64) * self.stride

    def score_trace(self, trace: np.ndarray) -> np.ndarray:
        """The ``swc`` signal: one score per window position.

        The caller is responsible for normalisation (the locator applies
        its profiling-calibrated affine transform before scoring).
        """
        trace = np.asarray(trace, dtype=np.float32)
        if trace.ndim != 1:
            raise ValueError(f"expected a 1D trace, got shape {trace.shape}")
        if self.num_windows(trace.size) == 0:
            return np.zeros(0, dtype=np.float64)
        if self.method == "windowed":
            return self._score_windowed(trace)
        return self._score_dense(trace)

    def score_batch(self, traces) -> "list[np.ndarray]":
        """Score several traces, reusing the dense trunk across the batch.

        The batch analogue of :meth:`score_trace`: traces (which may have
        different lengths) are zero-padded to a common length and pushed
        through the convolutional trunk *together*, chunk by chunk, so the
        expensive convolutions amortise across the batch; each trace's
        window means then go through the FC head in one call per chunk.
        Zero padding is exact for the dense engine — the trunk's
        convolutions use "same" zero padding, so features inside each
        trace's valid region match the single-trace computation (up to FFT
        rounding).  With ``method="windowed"`` the traces are scored
        independently (that engine is per-window already).

        Returns one ``swc`` array per input trace.
        """
        traces = [np.asarray(t, dtype=np.float32) for t in traces]
        for trace in traces:
            if trace.ndim != 1:
                raise ValueError(f"expected 1D traces, got shape {trace.shape}")
        if not traces:
            return []
        if self.method == "windowed":
            return [self.score_trace(t) for t in traces]
        return self._score_dense_batch(traces)

    # ------------------------------------------------------------------ #

    def _score_dense_batch(self, traces: "list[np.ndarray]") -> "list[np.ndarray]":
        self.cnn.network.eval()
        counts = [self.num_windows(t.size) for t in traces]
        results = [np.empty(nw, dtype=np.float64) for nw in counts]
        max_windows = max(counts)
        if max_windows == 0:
            return results
        length = max(t.size for t in traces)
        padded = np.zeros((len(traces), length), dtype=np.float32)
        for i, trace in enumerate(traces):
            padded[i, : trace.size] = trace
        margin = self._margin
        offsets = np.arange(max_windows, dtype=np.int64) * self.stride
        chunk_windows = max(1, self.chunk_size // self.stride)
        for begin in range(0, max_windows, chunk_windows):
            batch_offsets = offsets[begin: begin + chunk_windows]
            span_start = int(batch_offsets[0])
            span_end = int(batch_offsets[-1]) + self.window
            ext_start = max(0, span_start - margin)
            ext_end = min(length, span_end + margin)
            rows = [i for i, nw in enumerate(counts) if nw > begin]
            segment = padded[rows, ext_start:ext_end]
            features = self._trunk.forward(segment[:, None, :])  # (R, C, len)
            csum = np.concatenate(
                [np.zeros((features.shape[0], features.shape[1], 1), dtype=np.float64),
                 np.cumsum(features, axis=2, dtype=np.float64)],
                axis=2,
            )
            pooled_parts = []
            spans = []
            for r, i in enumerate(rows):
                here = min(counts[i], begin + batch_offsets.size) - begin
                local = batch_offsets[:here] - ext_start
                pooled = (csum[r][:, local + self.window]
                          - csum[r][:, local]).T / self.window
                pooled_parts.append(pooled.astype(np.float32))
                spans.append((i, here))
            logits = self._head.forward(np.concatenate(pooled_parts, axis=0))
            scores = scores_from_logits(logits, self.score_mode)
            cursor = 0
            for i, here in spans:
                results[i][begin: begin + here] = scores[cursor: cursor + here]
                cursor += here
        return results

    # ------------------------------------------------------------------ #

    def _score_windowed(self, trace: np.ndarray) -> np.ndarray:
        offsets = self.window_offsets(trace.size)
        scores = np.empty(offsets.size, dtype=np.float64)
        windows_view = np.lib.stride_tricks.sliding_window_view(trace, self.window)
        for begin in range(0, offsets.size, self.batch_size):
            batch_offsets = offsets[begin: begin + self.batch_size]
            batch = windows_view[batch_offsets][:, None, :]
            logits = self.cnn.logits(np.ascontiguousarray(batch))
            scores[begin: begin + self.batch_size] = scores_from_logits(
                logits, self.score_mode
            )
        return scores

    def _score_dense(self, trace: np.ndarray) -> np.ndarray:
        self.cnn.network.eval()
        offsets = self.window_offsets(trace.size)
        length = trace.size
        margin = self._margin
        scores = np.empty(offsets.size, dtype=np.float64)
        out_pos = 0
        # Process offsets chunk by chunk; each chunk needs trunk features
        # over [chunk_start, last_window_end) plus the context margin.
        chunk_windows = max(1, self.chunk_size // self.stride)
        for begin in range(0, offsets.size, chunk_windows):
            batch_offsets = offsets[begin: begin + chunk_windows]
            span_start = int(batch_offsets[0])
            span_end = int(batch_offsets[-1]) + self.window
            ext_start = max(0, span_start - margin)
            ext_end = min(length, span_end + margin)
            segment = trace[ext_start:ext_end]
            features = self._trunk.forward(segment[None, None, :])[0]  # (C, len)
            # Prefix sums for O(1) window means.
            csum = np.concatenate(
                [np.zeros((features.shape[0], 1), dtype=np.float64),
                 np.cumsum(features, axis=1, dtype=np.float64)],
                axis=1,
            )
            local = batch_offsets - ext_start
            pooled = (csum[:, local + self.window] - csum[:, local]).T / self.window
            logits = self._head.forward(pooled.astype(np.float32))
            scores[out_pos: out_pos + batch_offsets.size] = scores_from_logits(
                logits, self.score_mode
            )
            out_pos += batch_offsets.size
        return scores
