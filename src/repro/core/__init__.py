"""The paper's contribution: CO localisation in side-channel traces.

The training pipeline (Section III-A/B) lives in
:mod:`repro.core.dataset` (window extraction and c0/c1 labelling) and
:mod:`repro.core.model` (the 1D-ResNet binary classifier of Figure 2).
The inference pipeline (Section III-C/D) is
:mod:`repro.core.sliding_window` (Slicing + CNN scoring),
:mod:`repro.core.segmentation` (threshold, median filter, rising edges) and
:mod:`repro.core.alignment` (cutting and aligning the located COs).
:class:`repro.core.locator.CryptoLocator` wires the whole thing into the
two-phase workflow of Figure 1.
"""

from repro.core.windows import extract_cipher_windows, extract_noise_windows, label_windows
from repro.core.dataset import WindowDataset, build_window_dataset
from repro.core.model import LocatorCNN, build_locator_cnn
from repro.core.sliding_window import SlidingWindowClassifier
from repro.core.segmentation import SegmentationConfig, segment_swc
from repro.core.alignment import align_cos, cut_cos
from repro.core.locator import CryptoLocator, LocatorResult

__all__ = [
    "extract_cipher_windows",
    "extract_noise_windows",
    "label_windows",
    "WindowDataset",
    "build_window_dataset",
    "LocatorCNN",
    "build_locator_cnn",
    "SlidingWindowClassifier",
    "SegmentationConfig",
    "segment_swc",
    "align_cos",
    "cut_cos",
    "CryptoLocator",
    "LocatorResult",
]
