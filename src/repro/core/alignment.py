"""Alignment stage: cut the located COs out of the trace and stack them.

Once segmentation has produced the CO start samples, mounting the CPA only
needs the trace cut at those starts and stacked on a common time origin
(Figure 1, Alignment block).  An optional refinement pass fine-tunes each
cut by maximising normalised cross-correlation against the ensemble mean,
absorbing the +-stride quantisation of the segmentation output.
"""

from __future__ import annotations

import numpy as np

from repro.signalproc import normalized_cross_correlation

__all__ = ["cut_cos", "align_cos"]


def cut_cos(
    trace: np.ndarray,
    starts: np.ndarray,
    length: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Cut ``length``-sample segments at each start.

    Returns ``(segments, kept)`` where ``segments`` is ``(n_kept, length)``
    and ``kept`` holds the indices of the starts whose segment fit inside
    the trace (a CO too close to the end of the capture is dropped, as it
    would be on the real scope).
    """
    trace = np.asarray(trace)
    starts = np.asarray(starts, dtype=np.int64)
    if length < 1:
        raise ValueError("length must be >= 1")
    if starts.size == 0:
        return np.zeros((0, length), dtype=trace.dtype), np.zeros(0, dtype=np.int64)
    valid = (starts >= 0) & (starts + length <= trace.size)
    kept = np.nonzero(valid)[0]
    idx = starts[kept][:, None] + np.arange(length)[None, :]
    return trace[idx], kept


def align_cos(
    trace: np.ndarray,
    starts: np.ndarray,
    length: int,
    refine: bool = False,
    max_shift: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Cut and (optionally) fine-align the located COs.

    With ``refine=True`` each segment is re-cut at the offset within
    ``+-max_shift`` that best NCC-matches the mean of the initial cuts.
    Returns ``(aligned_segments, kept_indices)``.
    """
    segments, kept = cut_cos(trace, starts, length)
    if not refine or segments.shape[0] < 2 or max_shift < 1:
        return segments, kept
    template = segments.mean(axis=0)
    trace = np.asarray(trace)
    starts = np.asarray(starts, dtype=np.int64)
    refined = []
    refined_kept = []
    for i in kept:
        lo = max(0, int(starts[i]) - max_shift)
        hi = min(trace.size, int(starts[i]) + max_shift + length)
        ncc = normalized_cross_correlation(trace[lo:hi], template)
        if ncc.size == 0:
            continue
        best = lo + int(np.argmax(ncc))
        if best + length <= trace.size:
            refined.append(trace[best: best + length])
            refined_kept.append(i)
    if not refined:
        return segments, kept
    return np.stack(refined), np.asarray(refined_kept, dtype=np.int64)
