"""Segmentation of the sliding-window classification signal (Section III-D).

The paper's algorithm: threshold ``swc`` into a -1/+1 square wave (``Th``),
clean it with a median filter (``MF``), take the rising edges, multiply by
the stride.  :func:`segment_swc` implements exactly that.

:func:`segment_regions` additionally exposes the *regions* behind the
edges — contiguous positive plateaus with their peak scores — which the
locator uses for two refinements at this reproduction's (much smaller)
scale:

* **peak-fraction onsets**: a plateau's weak left flank (windows that only
  graze the CO start) can fire a little early, especially when COs run
  back to back; placing the onset where the score first reaches a fraction
  of the plateau peak is robust to that flank;
* **strength-aware suppression**: when two detections are closer than a
  CO can physically be, the *stronger* plateau wins (true starts produce
  much taller plateaus than residual noise excursions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signalproc import median_filter, threshold_to_square_wave

__all__ = ["SegmentationConfig", "SegmentedRegion", "segment_regions", "segment_swc"]


@dataclass(frozen=True)
class SegmentationConfig:
    """Parameters of the segmentation stage."""

    threshold: float = 0.0
    mf_size: int = 7
    use_median_filter: bool = True   # False only for the ablation benchmark
    onset_mode: str = "edge"         # "edge" (paper) | "peak_fraction"
    peak_fraction: float = 0.5       # onset level for "peak_fraction"

    def __post_init__(self) -> None:
        if self.mf_size < 1 or self.mf_size % 2 == 0:
            raise ValueError("mf_size must be a positive odd integer")
        if self.onset_mode not in ("edge", "peak_fraction"):
            raise ValueError(f"unknown onset_mode {self.onset_mode!r}")
        if not 0.0 <= self.peak_fraction <= 1.0:
            raise ValueError("peak_fraction must be in [0, 1]")


@dataclass(frozen=True)
class SegmentedRegion:
    """One contiguous above-threshold plateau of the swc signal."""

    onset: int   # trace sample index of the detection point
    begin: int   # trace sample index where the plateau opens
    end: int     # trace sample index one window-step past the plateau
    peak: float  # maximum swc value inside the plateau


def _binary_regions(square: np.ndarray) -> list[tuple[int, int]]:
    """(start, stop) window-index spans of the +1 plateaus."""
    high = square > 0
    if not high.any():
        return []
    edges = np.diff(high.astype(np.int8))
    starts = (np.nonzero(edges == 1)[0] + 1).tolist()
    stops = (np.nonzero(edges == -1)[0] + 1).tolist()
    if high[0]:
        starts.insert(0, 0)
    if high[-1]:
        stops.append(high.size)
    return list(zip(starts, stops))


def segment_regions(
    swc: np.ndarray,
    stride: int,
    config: SegmentationConfig | None = None,
) -> list[SegmentedRegion]:
    """Detect CO plateaus in a sliding-window classification signal."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    config = config if config is not None else SegmentationConfig()
    swc = np.asarray(swc, dtype=np.float64)
    if swc.ndim != 1:
        raise ValueError(f"expected 1D swc, got shape {swc.shape}")
    if swc.size == 0:
        return []
    square = threshold_to_square_wave(swc, config.threshold)
    if config.use_median_filter and config.mf_size > 1:
        square = median_filter(square, config.mf_size)
        # The median of ±1 values can be 0 at plateau borders; re-binarise
        # so the region finder sees a clean square wave.
        square = np.where(square > 0, 1.0, -1.0)
    regions = []
    for begin_w, stop_w in _binary_regions(square):
        span = swc[begin_w:stop_w]
        peak = float(span.max())
        if config.onset_mode == "edge":
            onset_w = begin_w
        else:
            level = config.threshold + config.peak_fraction * (peak - config.threshold)
            above = np.nonzero(span >= level)[0]
            onset_w = begin_w + (int(above[0]) if above.size else 0)
        regions.append(
            SegmentedRegion(
                onset=onset_w * stride,
                begin=begin_w * stride,
                end=stop_w * stride,
                peak=peak,
            )
        )
    return regions


def segment_swc(
    swc: np.ndarray,
    stride: int,
    config: SegmentationConfig | None = None,
) -> np.ndarray:
    """CO start samples from a sliding-window classification signal.

    With the default ``onset_mode="edge"`` this is the literal Section
    III-D algorithm: the returned samples are the rising edges of the
    median-filtered square wave, scaled by the stride.
    """
    regions = segment_regions(swc, stride, config)
    return np.asarray([r.onset for r in regions], dtype=np.int64)
