"""The paper's 1D CNN (Figure 2): a six-stage adapted ResNet.

Architecture, top to bottom:

1. convolutional block: Conv1d(1 -> 16) + BatchNorm + ReLU;
2. residual block with 16 filters;
3. residual block raising the filters to 32;
4. global average pooling (N x 32 -> 32), the layer that lets inference run
   with a window size different from training;
5. fully connected block: Linear(32 -> 32) + ReLU + Linear(32 -> 2);
6. softmax — fused into the loss during training, applied explicitly only
   when probabilities are requested.

Section III-C's observation is preserved: the *linear* fully-connected
output (before softmax) exposes the recurrent localisation pattern better
than the probabilities, so :meth:`LocatorCNN.scores` defaults to a linear
read-out.
"""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BatchNorm1d,
    Conv1d,
    GlobalAvgPool1d,
    Linear,
    ReLU,
    ResidualBlock1d,
    Sequential,
)
from repro.nn.loss import softmax

__all__ = ["build_locator_cnn", "LocatorCNN"]


def build_locator_cnn(
    kernel_size: int = 63,
    filters: tuple[int, int] = (16, 32),
    fc_width: int = 32,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Assemble the network of Figure 2 as a :class:`Sequential`.

    ``filters`` are the channel counts of the two residual blocks (the
    paper: 16 then 32); the first convolutional block uses ``filters[0]``.
    """
    rng = rng if rng is not None else np.random.default_rng()
    f1, f2 = filters
    return Sequential(
        Conv1d(1, f1, kernel_size, rng=rng),
        BatchNorm1d(f1),
        ReLU(),
        ResidualBlock1d(f1, f1, kernel_size, rng=rng),
        ResidualBlock1d(f1, f2, kernel_size, rng=rng),
        GlobalAvgPool1d(),
        Linear(f2, fc_width, rng=rng),
        ReLU(),
        Linear(fc_width, 2, rng=rng),
    )


class LocatorCNN:
    """Inference wrapper exposing the score read-outs of Section III-C."""

    def __init__(self, network: Sequential) -> None:
        self.network = network

    def logits(self, windows: np.ndarray, batch_size: int = 512) -> np.ndarray:
        """Linear FC outputs for ``(n, 1, N)`` windows, in eval mode."""
        windows = np.asarray(windows, dtype=np.float32)
        if windows.ndim != 3 or windows.shape[1] != 1:
            raise ValueError(f"expected (n, 1, N) windows, got {windows.shape}")
        self.network.eval()
        chunks = []
        for begin in range(0, windows.shape[0], batch_size):
            chunks.append(self.network.forward(windows[begin: begin + batch_size]))
        return (
            np.concatenate(chunks, axis=0) if chunks else np.zeros((0, 2), dtype=np.float32)
        )

    def scores(self, windows: np.ndarray, mode: str = "margin") -> np.ndarray:
        """Per-window localisation score.

        ``"class1"`` is the paper's choice (linear class-1 output);
        ``"margin"`` (class1 - class0) shifts the natural decision boundary
        to 0, making the segmentation threshold scale-free; ``"prob"`` is
        the softmax class-1 probability, kept for the ablation that shows
        why the paper prefers the linear output.
        """
        logits = self.logits(windows)
        return scores_from_logits(logits, mode)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Hard class decisions (argmax over the two logits)."""
        return np.argmax(self.logits(windows), axis=1)


def scores_from_logits(logits: np.ndarray, mode: str) -> np.ndarray:
    """Convert ``(n, 2)`` logits into a 1D localisation score signal."""
    logits = np.asarray(logits)
    if logits.ndim != 2 or logits.shape[1] != 2:
        raise ValueError(f"expected (n, 2) logits, got {logits.shape}")
    if mode == "class1":
        return logits[:, 1].astype(np.float64)
    if mode == "margin":
        return (logits[:, 1] - logits[:, 0]).astype(np.float64)
    if mode == "prob":
        return softmax(logits)[:, 1].astype(np.float64)
    raise ValueError(f"unknown score mode {mode!r}")
