"""Assembling the training database (the Dataset Creation block, Fig. 1).

Combines the per-trace window extraction of :mod:`repro.core.windows` into
the three-population database of Table I — *cipher start*, *cipher rest*,
and *noise* windows — with configurable population sizes, then hands out
the stratified 80/15/5 split the paper trains with.

Two scaling accommodations over the paper's literal procedure (both
default-on, both covered by an ablation benchmark):

* **start jitter** — the c1 population is sampled over one stride of
  offsets past the true start rather than at the exact start only, so the
  training distribution matches the stride-quantised windows the inference
  slicer produces;
* **random rest offsets** — the c0 *cipher rest* windows are drawn at
  random offsets inside the CO body instead of on the consecutive
  non-overlapping grid, covering every phase alignment with far fewer
  profiling captures than the paper's 65 k+ traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.windows import (
    CLASS_NOT_START,
    CLASS_START,
    extract_cipher_windows,
    extract_interior_windows,
    extract_noise_windows,
    extract_start_windows,
    label_windows,
)
from repro.nn.data import ArrayDataset, train_val_test_split
from repro.soc.platform import CipherTrace

__all__ = ["WindowDataset", "build_window_dataset"]


@dataclass
class WindowDataset:
    """The assembled window database plus its population bookkeeping."""

    x: np.ndarray          # (n, 1, N) float32 windows
    y: np.ndarray          # (n,) int64, CLASS_START / CLASS_NOT_START
    n_start: int
    n_rest: int
    n_noise: int

    def split(
        self,
        fractions: tuple[float, float, float] = (0.80, 0.15, 0.05),
        rng: np.random.Generator | None = None,
    ) -> tuple[ArrayDataset, ArrayDataset, ArrayDataset]:
        """Stratified train/validation/test split (paper: 80/15/5)."""
        return train_val_test_split(self.x, self.y, fractions, rng=rng)

    def __len__(self) -> int:
        return int(self.x.shape[0])


def build_window_dataset(
    cipher_traces: list[CipherTrace],
    noise_trace: np.ndarray,
    window: int,
    n_rest: int | None = None,
    n_noise: int | None = None,
    rng: np.random.Generator | None = None,
    transform=None,
    start_jitter: int = 0,
    starts_per_trace: int = 1,
    rest_mode: str = "grid",
) -> WindowDataset:
    """Build the c1/c0 window database from profiling captures.

    Parameters
    ----------
    cipher_traces:
        Profiling captures (one CO each, known ``co_start``).
    noise_trace:
        A long capture of noise applications only.
    window:
        Window size ``N_train``.
    n_rest, n_noise:
        Target sizes of the *cipher rest* and *noise* populations.  ``None``
        keeps every available rest window / draws one noise window per
        cipher trace, mirroring the roughly balanced mixes of Table I.
    rng:
        Randomness for subsampling and window placement.
    transform:
        Optional trace-level normalisation (e.g. the locator's calibrated
        affine transform), applied to every trace before window extraction.
        When given, windows are used as-is; otherwise each window is
        standardised individually.
    start_jitter, starts_per_trace:
        c1 augmentation (see module docs).  The defaults reproduce the
        paper's literal labelling: one exact-start window per trace.
    rest_mode:
        ``"grid"`` for the paper's consecutive non-overlapping c0 windows,
        ``"random"`` for random interior offsets.
    """
    if not cipher_traces:
        raise ValueError("need at least one cipher trace")
    if rest_mode not in ("grid", "random"):
        raise ValueError(f"unknown rest_mode {rest_mode!r}")
    rng = rng if rng is not None else np.random.default_rng()
    if transform is not None:
        noise_trace = transform(np.asarray(noise_trace))

    start_parts = []
    rest_parts = []
    rest_per_trace = None
    if rest_mode == "random" and n_rest is not None:
        rest_per_trace = max(1, -(-n_rest // len(cipher_traces)))  # ceil div
    for capture in cipher_traces:
        trace = capture.trace if transform is None else transform(capture.trace)
        start_parts.append(
            extract_start_windows(
                trace, capture.co_start, window, start_jitter, starts_per_trace, rng
            )
        )
        if rest_mode == "grid":
            _, rest = extract_cipher_windows(trace, capture.co_start, window)
            if rest.size:
                rest_parts.append(rest)
        else:
            interior = extract_interior_windows(
                trace, capture.co_start, window, rest_per_trace or 4, rng
            )
            if interior.size:
                rest_parts.append(interior)
    start_windows = np.concatenate(start_parts, axis=0)
    rest_windows = (
        np.concatenate(rest_parts, axis=0)
        if rest_parts
        else np.zeros((0, window), dtype=np.float32)
    )
    if n_rest is not None and rest_windows.shape[0] > n_rest:
        keep = rng.choice(rest_windows.shape[0], size=n_rest, replace=False)
        rest_windows = rest_windows[keep]
    if n_noise is None:
        n_noise = len(cipher_traces)
    noise_windows = extract_noise_windows(noise_trace, window, n_noise, rng)

    other = np.concatenate([rest_windows, noise_windows], axis=0)
    x, y = label_windows(start_windows, other, normalize=transform is None)
    assert int((y == CLASS_START).sum()) == start_windows.shape[0]
    assert int((y == CLASS_NOT_START).sum()) == other.shape[0]
    return WindowDataset(
        x=x,
        y=y,
        n_start=start_windows.shape[0],
        n_rest=rest_windows.shape[0],
        n_noise=noise_windows.shape[0],
    )
