"""Process-parallel sharded attack campaigns over mergeable accumulators.

A :class:`ParallelCampaign` multiplies the streaming campaign across CPU
cores.  The campaign's trace budget is cut into fixed **shards** — block
``i`` covers traces ``[i*shard_size, (i+1)*shard_size)`` and is captured by
a platform seeded with the ``i``-th child of the campaign seed
(:func:`numpy.random.SeedSequence.spawn` semantics, rebuilt worker-side via
``spawn_key``).  The shard contents therefore depend only on the campaign
seed and the shard index:

* a run **reruns bit-identically**, and the captured trace multiset is the
  same whether 1, 4, or 64 workers execute it;
* workers are embarrassingly parallel — each captures its shard, folds it
  into its own distinguisher accumulator (any registered distinguisher,
  rebuilt worker-side from a picklable
  :class:`~repro.attacks.distinguishers.DistinguisherSpec`; the
  historical HW CPA by default), optionally persists it to its own
  :class:`~repro.campaign.store.TraceStore` shard directory, and ships
  the sufficient statistics back;
* the parent **merges** accumulators in shard order at every rank-ladder
  checkpoint (checkpoints are aligned to shard boundaries) and applies the
  same early-stop streak logic as the serial
  :class:`~repro.runtime.campaign.AttackCampaign`.

:class:`ShardedSegmentSource` exposes the identical sharded stream as a
plain serial :class:`~repro.runtime.campaign.SegmentSource`, so a serial
``AttackCampaign`` over it accumulates exactly the traces a parallel run
merges — the equivalence the test suite pins down.  Its ``skip`` is cheap:
whole untouched shards are skipped for free (independent seeds), only the
shard the cursor lands in re-draws its prefix.

Resume works per shard: re-running a partially-finished parallel campaign
over the same ``store_root`` replays each shard directory into its
worker's accumulator and captures only the remainder of the shard (the
source fast-forwards past the replayed prefix), so an interrupted-and-
resumed parallel campaign accumulates exactly the traces an uninterrupted
one would.

Execution is fault tolerant (:mod:`repro.runtime.retry`): failed shards
retry with exponential backoff and re-capture bit-identically (shard
streams are pure functions of seed and index), broken pools are rebuilt
and only unfinished shards re-dispatched, hung shards are cancelled by a
per-shard watchdog ``shard_timeout``, and a campaign whose shards exhaust
their retries degrades to a ``partial=True`` result over the merged
prefix instead of aborting — with per-shard stores left positioned for
resume and the failure recorded in the campaign journal
(:mod:`repro.runtime.journal`).  Resume paths verify store integrity and
quarantine corrupt shards before replaying them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Protocol

import numpy as np

from repro.attacks.distinguishers import (
    Distinguisher,
    DistinguisherSpec,
    resolve_distinguisher,
)
from repro.attacks.key_rank import MIN_CPA_TRACES, geometric_checkpoints
from repro.campaign import CorruptManifestError, TraceStore
from repro.ciphers.registry import get_cipher
from repro.runtime.campaign import (
    CampaignResult,
    CheckpointRecord,
    PlatformSegmentSource,
    SegmentSource,
    evaluate_checkpoint,
    extends_streak,
    streak_start,
)
from repro.runtime.journal import CampaignJournal
from repro.runtime.retry import (
    RetryPolicy,
    ShardExecutor,
    ShardFailure,
    pool_context as _pool_context,
)
from repro.soc.platform import PlatformSpec

__all__ = [
    "ShardSpec",
    "ShardResult",
    "CampaignSourceSpec",
    "PlatformCampaignSpec",
    "ReducedKeySource",
    "ShardedSegmentSource",
    "ParallelCampaign",
    "plan_shards",
    "shard_seed",
    "shard_aligned_checkpoints",
    "run_shard",
    "is_shard_store_root",
]

# SeedSequence spawn-key layout under the campaign seed: key 0 is reserved
# (campaign-level draws), shard i uses (1, i) — the children of the shard
# root.  Workers rebuild their child from (campaign_seed, shard index)
# without holding the parent sequence.
_SHARD_ROOT = 1


def shard_seed(campaign_seed: int, index: int) -> np.random.SeedSequence:
    """The ``index``-th shard's child seed under ``campaign_seed``.

    Identical to ``SeedSequence(campaign_seed).spawn(2)[1].spawn(n)[index]``
    but constructible from the two integers alone, which is what a pool
    worker receives.
    """
    return np.random.SeedSequence(
        int(campaign_seed), spawn_key=(_SHARD_ROOT, int(index))
    )


@dataclass(frozen=True)
class ShardSpec:
    """One shard of a campaign's trace budget: a seed plus a trace range."""

    index: int
    start: int
    count: int
    campaign_seed: int

    @property
    def stop(self) -> int:
        return self.start + self.count

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        return shard_seed(self.campaign_seed, self.index)


def plan_shards(
    campaign_seed: int, max_traces: int, shard_size: int
) -> tuple[ShardSpec, ...]:
    """Deterministic shard plan: disjoint ranges + spawned child seeds.

    Every shard except possibly the last holds ``shard_size`` traces.  The
    plan is a pure function of its arguments; growing ``max_traces`` later
    extends the final partial shard and appends new ones without changing
    any existing shard's stream (shard content is a prefix property of the
    shard's seeded source).
    """
    if max_traces < 1:
        raise ValueError("max_traces must be >= 1")
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    shards = []
    for index, start in enumerate(range(0, int(max_traces), int(shard_size))):
        count = min(int(shard_size), int(max_traces) - start)
        shards.append(ShardSpec(
            index=index, start=start, count=count,
            campaign_seed=int(campaign_seed),
        ))
    return tuple(shards)


def shard_aligned_checkpoints(
    max_traces: int, shard_size: int, first: int = 25, growth: float = 1.5
) -> list[int]:
    """The geometric ladder, rounded up to shard boundaries.

    The parent can only evaluate ranks over fully merged shards, so every
    rung is a multiple of ``shard_size`` (capped at ``max_traces``, which
    is always the final rung).  Serial reference campaigns take this exact
    ladder via ``AttackCampaign(checkpoints=...)`` so both report ranks at
    the same trace counts.
    """
    aligned = sorted({
        min(-(-point // shard_size) * shard_size, int(max_traces))
        for point in geometric_checkpoints(
            int(max_traces), first=first, growth=growth
        )
    })
    return [value for value in aligned if value >= MIN_CPA_TRACES]


# ---------------------------------------------------------------------- #
# campaign source specs (what a pool worker receives)                    #
# ---------------------------------------------------------------------- #


class CampaignSourceSpec(Protocol):
    """A picklable recipe for per-shard segment sources.

    Exposes the campaign-wide schema (``n_samples``, ``block_size``,
    ``true_key``) and builds one independent :class:`SegmentSource` per
    shard from the shard's child seed.
    """

    n_samples: int
    block_size: int
    true_key: bytes | None

    def build_source(self, seed) -> SegmentSource:
        ...  # pragma: no cover


class ReducedKeySource:
    """Attack only the first ``n_bytes`` key bytes of a wrapped source.

    Truncating the plaintext matrix shrinks the accumulator (and the rank
    evaluation) to the leading bytes — the "reduced key" configuration the
    large random-delay workloads use to bound test cost.  Capture and skip
    delegate, so the underlying stream is unchanged.
    """

    def __init__(self, source, n_bytes: int) -> None:
        if not 1 <= n_bytes <= source.block_size:
            raise ValueError(
                f"n_bytes must be in [1, {source.block_size}], got {n_bytes}"
            )
        self._source = source
        self.n_samples = source.n_samples
        self.block_size = int(n_bytes)
        self.true_key = (
            None if source.true_key is None else source.true_key[:n_bytes]
        )

    def capture(self, count: int):
        traces, plaintexts = self._source.capture(count)
        return traces, plaintexts[:, : self.block_size]

    def skip(self, count: int) -> None:
        skip = getattr(self._source, "skip", None)
        if skip is not None:
            skip(count)
        elif count > 0:
            # Capture-and-discard keeps the stream position correct for
            # sources that cannot fast-forward natively.
            self._source.capture(count)


@dataclass(frozen=True)
class PlatformCampaignSpec:
    """Everything a worker needs to capture campaign shards on a platform.

    The fixed attack ``key`` and resolved ``segment_length`` travel in the
    spec (they must be identical across shards); the platform itself is
    rebuilt per shard from :class:`~repro.soc.platform.PlatformSpec` and
    the shard's child seed.  ``attack_bytes`` optionally reduces the
    attacked key to the leading bytes (see :class:`ReducedKeySource`).
    """

    platform: PlatformSpec
    key: bytes
    segment_length: int
    nop_header: int = 96
    batch_size: int | None = None
    attack_bytes: int | None = None

    @property
    def n_samples(self) -> int:
        return int(self.segment_length)

    @property
    def block_size(self) -> int:
        if self.attack_bytes is not None:
            return int(self.attack_bytes)
        return get_cipher(self.platform.cipher_name).block_size

    @property
    def true_key(self) -> bytes:
        if self.attack_bytes is not None:
            return self.key[: self.attack_bytes]
        return self.key

    @property
    def capture_mode(self) -> str:
        return self.platform.capture_mode

    def build_source(self, seed) -> SegmentSource:
        source = PlatformSegmentSource(
            self.platform.build(seed),
            key=self.key,
            segment_length=self.segment_length,
            nop_header=self.nop_header,
            batch_size=self.batch_size,
        )
        if self.attack_bytes is not None:
            return ReducedKeySource(source, self.attack_bytes)
        return source


# ---------------------------------------------------------------------- #
# the serial view of the sharded stream                                  #
# ---------------------------------------------------------------------- #


class ShardedSegmentSource:
    """The sharded capture stream as one serial :class:`SegmentSource`.

    Captures walk the shards in index order, building each shard's source
    from its child seed on entry — the exact trace sequence a parallel run
    merges (shard-order concatenation).  A serial ``AttackCampaign`` over
    this source is the reference a :class:`ParallelCampaign` must match.
    """

    def __init__(self, spec: CampaignSourceSpec, campaign_seed: int,
                 shard_size: int) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.spec = spec
        self.campaign_seed = int(campaign_seed)
        self.shard_size = int(shard_size)
        self.n_samples = spec.n_samples
        self.block_size = spec.block_size
        self.true_key = spec.true_key
        self._position = 0
        self._source: SegmentSource | None = None
        self._source_index = -1

    def _enter_shard(self, index: int) -> SegmentSource:
        if index != self._source_index:
            self._source = self.spec.build_source(
                shard_seed(self.campaign_seed, index)
            )
            self._source_index = index
        return self._source

    def capture(self, count: int):
        traces = np.empty((count, self.n_samples))
        plaintexts = np.empty((count, self.block_size), dtype=np.uint8)
        done = 0
        while done < count:
            index = self._position // self.shard_size
            room = (index + 1) * self.shard_size - self._position
            take = min(room, count - done)
            t, p = self._enter_shard(index).capture(take)
            traces[done:done + take] = t
            plaintexts[done:done + take] = p
            self._position += take
            done += take
        return traces, plaintexts

    def skip(self, count: int) -> None:
        """Fast-forward ``count`` traces.

        Shards the cursor passes over entirely *without having started
        them* cost nothing — their seeds are independent, so there is no
        stream state to advance.  Only a shard entered part-way must
        re-draw its skipped prefix.
        """
        end = self._position + int(count)
        while self._position < end:
            index = self._position // self.shard_size
            boundary = (index + 1) * self.shard_size
            take = min(boundary, end) - self._position
            # The skip spans this whole shard from its first trace: the
            # shard never needs to be built at all.
            whole_shard = (
                self._position == index * self.shard_size and boundary <= end
            )
            if not whole_shard:
                source = self._enter_shard(index)
                skip = getattr(source, "skip", None)
                if skip is None:  # pragma: no cover - protocol fallback
                    source.capture(take)
                else:
                    skip(take)
            self._position += take


# ---------------------------------------------------------------------- #
# the pool worker                                                        #
# ---------------------------------------------------------------------- #


@dataclass
class ShardResult:
    """What one shard worker ships back to the merging parent."""

    index: int
    accumulator: Distinguisher
    replayed: int               # traces replayed from the shard's store
    capture_seconds: float
    quarantined: int = 0        # corrupt files quarantined before resume


def _shard_store_dir(store_root, index: int) -> Path:
    return Path(store_root) / f"shard-{index:06d}"


def _quarantine_store_dir(store_dir: Path) -> Path:
    """Rename an unrecoverable store directory aside, never clobbering."""
    target = store_dir.with_suffix(".quarantined")
    attempt = 0
    while target.exists():
        attempt += 1
        target = store_dir.with_suffix(f".quarantined.{attempt}")
    store_dir.rename(target)
    return target


def _recover_store_dir(store_dir: Path) -> int:
    """Integrity-check an existing shard store before it is resumed.

    Corrupt or orphaned payload files are quarantined (the manifest is
    truncated to its intact prefix, so the shard re-captures exactly the
    dropped tail); a manifest too damaged to parse quarantines the whole
    directory and the shard re-captures from scratch.  Returns the count
    of quarantined files.
    """
    if not (store_dir / "manifest.json").exists():
        return 0
    try:
        store = TraceStore.open(store_dir)
    except CorruptManifestError:
        _quarantine_store_dir(store_dir)
        return 1
    return len(store.recover().quarantined)


def is_shard_store_root(path) -> bool:
    """Does ``path`` look like a parallel campaign's per-shard store root?

    Serial campaigns persist one :class:`TraceStore` (a ``manifest.json``
    directly in the directory); parallel campaigns persist one store per
    ``shard-NNNNNN`` subdirectory.  Both campaign entry points use this to
    refuse a store captured by the other mode instead of silently
    recapturing next to it.
    """
    return (Path(path) / "shard-000000" / "manifest.json").exists()


def run_shard(
    spec: CampaignSourceSpec,
    shard: ShardSpec,
    store_root=None,
    aggregate: int = 1,
    batch_size: int = 256,
    distinguisher: DistinguisherSpec | None = None,
    fault_plan=None,
) -> ShardResult:
    """Capture (or resume) one shard and accumulate it.

    ``distinguisher`` picks the shard's attack statistic (the historical
    HW CPA when ``None``); the parent must merge shard accumulators of
    the identical configuration, which is why workers receive the
    picklable spec rather than a live accumulator.

    With a ``store_root`` the shard persists under its own
    ``shard-<index>`` trace-store directory: the store is integrity-
    checked (corrupt tails and orphans quarantined) before existing
    traces are replayed into the accumulator, and the shard's seeded
    source is fast-forwarded past them, so re-running a partially
    captured shard appends exactly the traces the uninterrupted run would
    have captured.  A store longer than the shard (a previous run with a
    larger budget, or a larger shard size — per-index shard streams are
    prefixes of the same child-seed stream either way) replays only its
    first ``shard.count`` traces.

    ``fault_plan`` (a :class:`~repro.runtime.faults.FaultPlan`) is the
    chaos-test hook: it may kill, hang, or corrupt this shard at capture
    boundaries.
    """
    _, accumulator = resolve_distinguisher(distinguisher, aggregate=aggregate)
    capture_mode = getattr(spec, "capture_mode", "exact")
    store = None
    replayed = 0
    quarantined = 0
    if store_root is not None:
        store_dir = _shard_store_dir(store_root, shard.index)
        quarantined = _recover_store_dir(store_dir)
        store = TraceStore.open_or_create(
            store_dir,
            n_samples=spec.n_samples,
            block_size=spec.block_size,
            key=spec.true_key,
            meta={
                "shard_index": shard.index,
                "start": shard.start,
                "campaign_seed": shard.campaign_seed,
                "capture_mode": capture_mode,
            },
        )
        meta = store.meta
        if (
            meta.get("shard_index", shard.index) != shard.index
            or meta.get("campaign_seed", shard.campaign_seed)
            != shard.campaign_seed
        ):
            raise ValueError(
                f"store {store.path} was captured as shard "
                f"{meta.get('shard_index')} of campaign seed "
                f"{meta.get('campaign_seed')}, not shard {shard.index} "
                f"of seed {shard.campaign_seed}"
            )
        stored_mode = meta.get("capture_mode", "exact")
        if len(store) and stored_mode != capture_mode:
            raise ValueError(
                f"store {store.path} was captured in {stored_mode!r} capture "
                f"mode; resuming it in {capture_mode!r} would splice two "
                f"different trace streams"
            )
        # The store holds a prefix of this shard's seeded stream (possibly
        # a longer one, if a previous run had a larger budget) — replay at
        # most shard.count traces of it.
        for traces, plaintexts in store.iter_chunks(batch_size):
            room = shard.count - replayed
            if room <= 0:
                break
            accumulator.update(traces[:room], plaintexts[:room])
            replayed += min(int(traces.shape[0]), room)
    capture_seconds = 0.0
    done = replayed
    if done < shard.count:
        source = spec.build_source(shard.seed_sequence)
        if replayed:
            source.skip(replayed)
        while done < shard.count:
            if fault_plan is not None:
                fault_plan.maybe_fire(shard.index, done=done, store=store)
            take = min(int(batch_size), shard.count - done)
            begin = time.perf_counter()
            traces, plaintexts = source.capture(take)
            capture_seconds += time.perf_counter() - begin
            if store is not None:
                store.append(traces, plaintexts)
            accumulator.update(traces, plaintexts)
            done += take
    return ShardResult(
        index=shard.index,
        accumulator=accumulator,
        replayed=replayed,
        capture_seconds=capture_seconds,
        quarantined=quarantined,
    )


# ---------------------------------------------------------------------- #
# the orchestrator                                                       #
# ---------------------------------------------------------------------- #


class ParallelCampaign:
    """Fan capture→accumulate shards over a process pool, merge, rank.

    Parameters mirror :class:`~repro.runtime.campaign.AttackCampaign`
    where they overlap; the additions are ``workers`` (pool width; 1 runs
    the shards inline, useful as a like-for-like serial baseline),
    ``shard_size`` (traces per shard — the unit of parallel work, seed
    derivation, and checkpoint alignment) and ``store_root`` (a directory
    of per-shard trace stores, replacing the serial campaign's single
    store).

    For a fixed ``(spec, seed, shard_size)`` the captured trace multiset,
    the merged statistics, and every reported checkpoint rank are
    independent of ``workers`` — parallelism is a pure wall-clock
    multiplier.  The pool captures up to ``workers - 1`` shards ahead of
    the current checkpoint rung to stay saturated; on early stop those
    speculative shards are discarded (their stores, when enabled, persist
    the usual deterministic streams and simply pre-warm a later resume).

    Failures are absorbed by the shard retry layer (``max_retries`` ×
    exponential ``retry_backoff``, per-shard ``shard_timeout`` watchdog;
    see :class:`~repro.runtime.retry.ShardExecutor`).  Retried shards
    re-capture bit-identically, so retries never perturb the result.  A
    shard that exhausts its retries ends the run gracefully: the
    completed shard prefix is merged and evaluated, and the result
    reports ``partial=True`` with the failed indices — re-running the
    same campaign over the same ``store_root`` retries just the missing
    work.  Note ``shard_timeout`` forces pool dispatch even at
    ``workers=1`` (only a separate process can be killed by the
    watchdog).
    """

    def __init__(
        self,
        spec: CampaignSourceSpec,
        seed: int,
        workers: int = 1,
        shard_size: int = 1024,
        store_root=None,
        aggregate: int = 1,
        first_checkpoint: int = 25,
        checkpoint_growth: float = 1.5,
        rank1_patience: int = 2,
        batch_size: int = 256,
        distinguisher: DistinguisherSpec | str | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        shard_timeout: float | None = None,
        fault_plan=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        if checkpoint_growth <= 1.0:
            raise ValueError("checkpoint_growth must be > 1")
        if rank1_patience < 1:
            raise ValueError("rank1_patience must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.spec = spec
        self.seed = int(seed)
        self.workers = int(workers)
        self.shard_size = int(shard_size)
        self.store_root = store_root
        self.distinguisher_spec, accumulator = resolve_distinguisher(
            distinguisher, aggregate=aggregate
        )
        if self.distinguisher_spec is None:
            raise TypeError(
                "ParallelCampaign needs a picklable DistinguisherSpec (or a "
                "registry name), not a live accumulator — pool workers "
                "rebuild their own"
            )
        self.accumulator = accumulator
        self.aggregate = accumulator.aggregate
        self._min_traces = max(MIN_CPA_TRACES, accumulator.min_traces)
        self.first_checkpoint = max(int(first_checkpoint), self._min_traces)
        self.checkpoint_growth = float(checkpoint_growth)
        self.rank1_patience = int(rank1_patience)
        self.batch_size = int(batch_size)
        self.retry_policy = RetryPolicy(
            max_retries=max_retries,
            backoff=retry_backoff,
            timeout=shard_timeout,
        )
        self.fault_plan = fault_plan
        self.true_key = spec.true_key

    def checkpoints(self, max_traces: int) -> list[int]:
        """The shard-aligned rank ladder this campaign will evaluate."""
        return [
            value
            for value in shard_aligned_checkpoints(
                max_traces, self.shard_size,
                first=self.first_checkpoint, growth=self.checkpoint_growth,
            )
            if value >= self._min_traces
        ]

    def sharded_source(self) -> ShardedSegmentSource:
        """A serial source over this campaign's exact trace stream."""
        return ShardedSegmentSource(self.spec, self.seed, self.shard_size)

    def run(self, max_traces: int, verbose: bool = False) -> CampaignResult:
        """Capture until early stop, ``max_traces`` merged, or retry exhaustion.

        The result's ``capture_seconds`` aggregates the workers' own
        capture timers (it can exceed wall clock when workers overlap);
        ``attack_seconds`` is the parent's merge + rank-evaluation time.

        A shard that fails every retry ends the run over the merged shard
        prefix with ``partial=True`` (evaluated as a final checkpoint when
        large enough); if not even the first shard completed, the
        :class:`~repro.runtime.retry.ShardFailure` propagates instead.  On
        any other exception — including ``KeyboardInterrupt`` — worker
        processes are terminated outright so no zombie keeps capturing
        after the parent dies.
        """
        if max_traces < self._min_traces:
            raise ValueError(f"max_traces must be >= {self._min_traces}")
        journal = None
        if self.store_root is not None:
            if (Path(self.store_root) / "manifest.json").exists():
                raise ValueError(
                    f"{self.store_root} holds a single serial TraceStore; "
                    f"resume it without workers, or point the parallel "
                    f"campaign at a fresh directory"
                )
            Path(self.store_root).mkdir(parents=True, exist_ok=True)
            journal = CampaignJournal.open_or_create(
                self.store_root, "parallel_campaign",
                meta={
                    "seed": self.seed,
                    "shard_size": self.shard_size,
                    "distinguisher": self.distinguisher_spec.name,
                },
            )
        shards = plan_shards(self.seed, max_traces, self.shard_size)
        if journal is not None:
            journal.begin(len(shards))
        ladder = self.checkpoints(max_traces)
        accumulator = self.accumulator = self.distinguisher_spec.build()
        records: list[CheckpointRecord] = []
        streak = 0
        stopped = False
        merged = 0                  # shards merged so far
        n = 0                       # traces merged so far
        resumed = 0
        quarantined = 0
        capture_seconds = 0.0
        attack_seconds = 0.0
        failures: list[ShardFailure] = []

        def on_event(index: int, state: str, retries: int) -> None:
            if journal is not None:
                journal.update_shard(index, state)
            if verbose and state in ("retrying", "failed"):
                print(
                    f"[parallel x{self.workers}] shard {index} {state} "
                    f"(retries {retries})"
                )

        executor = ShardExecutor(
            workers=self.workers, policy=self.retry_policy, on_event=on_event
        )
        submitted = 0
        try:
            for target in ladder:
                needed = -(-target // self.shard_size)   # ceil
                # Keep the pool saturated past the current rung: the
                # early geometric rungs need fewer shards than there
                # are workers, and shard streams are deterministic, so
                # capturing ahead changes nothing but wall clock (at
                # worst `workers - 1` shards are wasted on early stop).
                horizon = min(len(shards), needed + self.workers - 1)
                for shard in shards[submitted:horizon]:
                    executor.submit(
                        shard.index, run_shard, self.spec, shard,
                        self.store_root, self.aggregate, self.batch_size,
                        self.distinguisher_spec, self.fault_plan,
                    )
                submitted = max(submitted, horizon)
                for shard in shards[merged:needed]:
                    try:
                        result = executor.result(shard.index)
                    except ShardFailure as failure:
                        failures.append(failure)
                        break
                    begin = time.perf_counter()
                    accumulator.merge(result.accumulator)
                    attack_seconds += time.perf_counter() - begin
                    resumed += result.replayed
                    quarantined += result.quarantined
                    capture_seconds += result.capture_seconds
                    merged += 1
                    if journal is not None and result.quarantined:
                        journal.update_shard(
                            shard.index, "done", quarantined=True
                        )
                if failures:
                    break
                begin = time.perf_counter()
                n = accumulator.n_traces
                record = evaluate_checkpoint(accumulator, self.true_key, n)
                records.append(record)
                streak = streak + 1 if extends_streak(records, self.true_key) else 0
                stopped = streak >= self.rank1_patience
                attack_seconds += time.perf_counter() - begin
                if verbose:
                    rank = record.max_rank
                    print(
                        f"[parallel x{self.workers}] {n:>8d} traces "
                        f"({merged} shards): max rank "
                        f"{rank if rank is not None else '?'}, "
                        f"streak {streak}/{self.rank1_patience}"
                    )
                if stopped:
                    break
        except BaseException:
            # Interrupt / unexpected error: terminate workers outright so
            # no zombie keeps capturing after the parent unwinds.
            if journal is not None:
                journal.set_phase("interrupted")
            executor.close(force=True)
            raise
        # A graceful shutdown would block on an uncollected hung shard, so
        # force when any shard failed (its siblings may share the fault).
        executor.close(force=bool(failures))
        partial = bool(failures)
        if partial and merged == 0:
            if journal is not None:
                journal.set_phase("failed")
            raise failures[0]
        if partial:
            # Degrade gracefully: evaluate the merged prefix as the final
            # checkpoint (when it is both large and new enough to rank).
            n = accumulator.n_traces
            if n >= self._min_traces and (
                not records or n > records[-1].n_traces
            ):
                begin = time.perf_counter()
                records.append(
                    evaluate_checkpoint(accumulator, self.true_key, n)
                )
                streak = (
                    streak + 1 if extends_streak(records, self.true_key) else 0
                )
                attack_seconds += time.perf_counter() - begin
        if journal is not None:
            journal.set_phase(
                "partial" if partial
                else ("converged" if stopped else "exhausted")
            )
        return CampaignResult(
            records=records,
            n_traces=n,
            traces_to_rank1=streak_start(records, self.true_key, streak),
            early_stopped=stopped,
            recovered_key=(
                accumulator.recovered_key() if n >= self._min_traces else b""
            ),
            true_key=self.true_key,
            resumed_from=resumed,
            store_path=(
                str(self.store_root) if self.store_root is not None else None
            ),
            capture_seconds=capture_seconds,
            attack_seconds=attack_seconds,
            distinguisher=accumulator.name,
            partial=partial,
            failed_shards=tuple(f.index for f in failures),
            retries=executor.total_retries,
        )

