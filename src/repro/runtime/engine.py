"""The batched capture→locate→attack experiment engine.

:class:`ExperimentEngine` executes a :class:`~repro.runtime.plan.BatchPlan`
end to end on top of the repository's batched primitives:

* **profiling / training** — one locator per (cipher, RD, SNR) condition,
  profiled through the platform's batched capture path and cached for the
  engine's lifetime (an injectable ``locator_provider`` lets benchmarks
  reuse their own cache);
* **capture** — one attack session per scenario via the batched
  ``capture_session_trace``;
* **locate** — all of a condition's sessions scored together through
  :meth:`CryptoLocator.locate_many` in ``batch_size`` chunks;
* **attack** — optionally, the Section IV-C CPA on each located session.

Every step is deterministic given the plan and the engine seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.config import PipelineConfig, default_config
from repro.core.locator import CryptoLocator
from repro.evaluation.experiments import (
    default_tolerance,
    run_cpa_scenario,
    train_locator,
)
from repro.evaluation.hits import HitStats, match_hits
from repro.soc.platform import SessionTrace, SimulatedPlatform
from repro.campaign import TraceStore
from repro.runtime.campaign import AttackCampaign, CampaignResult, PlatformSegmentSource
from repro.runtime.parallel import (
    ParallelCampaign,
    PlatformCampaignSpec,
    is_shard_store_root,
)
from repro.runtime.plan import BatchPlan, ScenarioSpec
from repro.soc.platform import PlatformSpec

__all__ = ["ExperimentEngine", "ScenarioResult"]


def _ge_repetition(
    platform_spec: PlatformSpec,
    seed: int,
    segment_length: int | None,
    batch_size: int | None,
    ladder: "list[int]",
    aggregate: int,
    distinguisher,
    max_traces: int,
):
    """One guessing-entropy repetition, self-contained for pool workers.

    Rebuilds the repetition's platform from the picklable recipe (the key
    is drawn from the platform's seeded stream, exactly as the serial
    loop draws it), runs the full-ladder campaign with early stopping
    disabled, and ships the checkpoint records back.
    """
    source = PlatformSegmentSource(
        platform_spec.build(seed),
        segment_length=segment_length,
        batch_size=batch_size,
    )
    campaign = AttackCampaign(
        source,
        aggregate=aggregate,
        checkpoints=ladder,
        rank1_patience=len(ladder) + 1,
        batch_size=batch_size if batch_size is not None else 256,
        distinguisher=distinguisher,
    )
    return campaign.run(max_traces, verbose=False).records


@dataclass
class ScenarioResult:
    """Everything the engine measured for one scenario."""

    spec: ScenarioSpec
    stats: HitStats
    located: np.ndarray
    session: SessionTrace
    capture_seconds: float
    locate_seconds: float
    cpa_traces: int | None = None   # traces-to-rank-1, None = not run / failed
    extras: dict = field(default_factory=dict)

    def row(self) -> list[str]:
        """A formatted table row (scenario, hits, FPs, |err|, CPA)."""
        return [
            self.spec.describe(),
            f"{self.stats.hit_rate * 100:5.1f}%",
            str(self.stats.false_positives),
            f"{self.stats.mean_abs_error:.0f}",
            "-" if self.cpa_traces is None else str(self.cpa_traces),
        ]

    @staticmethod
    def header() -> list[str]:
        return ["scenario", "hits", "false pos", "mean |err|", "CPA (N. COs)"]


class ExperimentEngine:
    """Sweeps scenario plans through the shared batched pipeline.

    Parameters
    ----------
    dataset_scale:
        Table-I dataset scale for locator training (see
        :func:`repro.config.default_config`).
    seed:
        Engine seed: clone platforms and locator initialisation derive from
        it; target platforms use each scenario's own seed.
    locator_provider:
        Optional ``(cipher, max_delay, noise_std) -> CryptoLocator``
        override.  Benchmarks inject their session-wide locator cache here;
        by default the engine trains with
        :func:`repro.evaluation.experiments.train_locator` and caches per
        condition.
    method:
        Sliding-window engine for location: ``"windowed"`` (training
        faithful, default) or ``"dense"`` (fast batched trunk).
    train_noise_ops, config_overrides:
        Training knobs forwarded to the default provider.
    capture_mode:
        Capture path for every platform the engine builds: ``"exact"``
        (bit-identical to the scalar reference, default) or ``"fast"``
        (bulk randomness — see
        :class:`~repro.soc.platform.SimulatedPlatform`).
    """

    def __init__(
        self,
        dataset_scale: float = 1 / 64,
        seed: int = 0,
        locator_provider=None,
        method: str = "windowed",
        train_noise_ops: int = 60_000,
        config_overrides: "dict[str, PipelineConfig] | None" = None,
        verbose: bool = False,
        capture_mode: str = "exact",
    ) -> None:
        self.dataset_scale = float(dataset_scale)
        self.seed = int(seed)
        self.method = method
        self.train_noise_ops = int(train_noise_ops)
        self.config_overrides = dict(config_overrides or {})
        self.verbose = verbose
        self.capture_mode = capture_mode
        self._provider = locator_provider
        self._locators: dict[tuple[str, int, float], CryptoLocator] = {}

    # ------------------------------------------------------------------ #
    # locator management                                                 #
    # ------------------------------------------------------------------ #

    def locator_for(self, cipher: str, max_delay: int, noise_std: float = 1.0,
                    batch_size: int | None = None) -> CryptoLocator:
        """The (cached) trained locator for one condition.

        ``batch_size`` bounds the profiling-capture batches during
        training; it does not change the trained locator (captures are
        chunking-invariant), so it is not part of the cache key.
        """
        key = (cipher, int(max_delay), float(noise_std))
        locator = self._locators.get(key)
        if locator is None:
            if self._provider is not None:
                locator = self._provider(cipher, int(max_delay), float(noise_std))
            else:
                locator = self._train(cipher, int(max_delay), float(noise_std),
                                      batch_size)
            self._locators[key] = locator
        return locator

    def _train(self, cipher: str, max_delay: int, noise_std: float,
               batch_size: int | None = None) -> CryptoLocator:
        config = self.config_overrides.get(
            cipher, default_config(cipher, self.dataset_scale)
        )
        if self.verbose:
            print(f"[engine] training {cipher} RD-{max_delay} "
                  f"sigma={noise_std:g} locator ...")
        if noise_std == 1.0:
            locator, _ = train_locator(
                cipher, max_delay=max_delay, seed=self.seed, config=config,
                noise_ops=self.train_noise_ops, batch_size=batch_size,
            )
            return locator
        clone = self.platform_for(
            ScenarioSpec(cipher=cipher, max_delay=max_delay,
                         noise_std=noise_std, seed=self.seed),
            clone=True,
        )
        locator = CryptoLocator(config, seed=self.seed + 1)
        locator.fit_from_platform(clone, noise_ops=self.train_noise_ops,
                                  batch_size=batch_size)
        return locator

    # ------------------------------------------------------------------ #
    # capture / locate / attack                                          #
    # ------------------------------------------------------------------ #

    def platform_spec_for(self, spec: ScenarioSpec) -> PlatformSpec:
        """The platform recipe (countermeasures included) for a scenario."""
        return PlatformSpec(
            cipher_name=spec.cipher,
            max_delay=spec.max_delay,
            noise_std=spec.noise_std,
            capture_mode=self.capture_mode,
            shuffle=spec.shuffle,
            jitter=spec.jitter,
            masking_order=spec.masking_order,
        )

    def platform_for(self, spec: ScenarioSpec, clone: bool = False) -> SimulatedPlatform:
        """Build the (clone or target) platform for a scenario."""
        return self.platform_spec_for(spec).build(
            self.seed if clone else spec.seed
        )

    def capture_session(self, spec: ScenarioSpec) -> SessionTrace:
        """Capture one scenario's attack session via the batched path."""
        target = self.platform_for(spec)
        return target.capture_session_trace(
            spec.n_cos, noise_interleaved=spec.noise_interleaved
        )

    def locate_sessions(
        self,
        locator: CryptoLocator,
        sessions: "list[SessionTrace]",
        batch_size: int,
    ) -> "list[np.ndarray]":
        """Locate COs in several sessions with one batched scoring pass."""
        return locator.locate_many(
            [session.trace for session in sessions],
            method=self.method,
            batch_size=batch_size,
        )

    def run(
        self,
        plan: BatchPlan,
        with_cpa: bool = False,
        aggregate: int = 64,
        distinguisher=None,
    ) -> "list[ScenarioResult]":
        """Execute a plan; returns one :class:`ScenarioResult` per scenario.

        Scenarios sharing a condition reuse one locator and are located
        together in ``plan.batch_size`` chunks.  Results come back in plan
        order.
        """
        indices: dict[tuple[str, int, float], list[int]] = {}
        for position, spec in enumerate(plan.scenarios):
            indices.setdefault(spec.condition, []).append(position)
        results: list[ScenarioResult | None] = [None] * len(plan.scenarios)
        for condition, specs in plan.grouped():
            positions = indices[condition]
            locator = self.locator_for(*condition, batch_size=plan.batch_size)
            tolerance = default_tolerance(locator.config)
            sessions = []
            capture_times = []
            for spec in specs:
                begin = time.perf_counter()
                sessions.append(self.capture_session(spec))
                capture_times.append(time.perf_counter() - begin)
                if self.verbose:
                    print(f"[engine] captured {spec.describe()} "
                          f"({sessions[-1].trace.size} samples)")
            begin = time.perf_counter()
            located = self.locate_sessions(locator, sessions, plan.batch_size)
            locate_seconds = (time.perf_counter() - begin) / max(len(specs), 1)
            for position, spec, session, starts, capture_seconds in zip(
                positions, specs, sessions, located, capture_times
            ):
                stats = match_hits(starts, session.true_starts, tolerance)
                cpa = None
                if with_cpa:
                    cpa = run_cpa_scenario(
                        locator, session, starts, aggregate=aggregate,
                        distinguisher=distinguisher,
                    )
                results[position] = ScenarioResult(
                    spec=spec,
                    stats=stats,
                    located=starts,
                    session=session,
                    capture_seconds=capture_seconds,
                    locate_seconds=locate_seconds,
                    cpa_traces=cpa,
                )
        return results

    # ------------------------------------------------------------------ #
    # streaming campaigns                                                #
    # ------------------------------------------------------------------ #

    def run_campaign(
        self,
        spec: ScenarioSpec,
        max_traces: int,
        store_dir=None,
        aggregate: int = 32,
        segment_length: int | None = None,
        first_checkpoint: int = 25,
        checkpoint_growth: float = 1.5,
        rank1_patience: int = 2,
        batch_size: int | None = None,
        workers: int | None = None,
        shard_size: int = 1024,
        attack_bytes: int | None = None,
        distinguisher=None,
    ) -> CampaignResult:
        """Run one scenario's streaming attack campaign.

        Builds the target platform for ``spec`` (cipher, random delay,
        oscilloscope noise), hands its fixed-key capture path to an
        :class:`AttackCampaign`, and streams until early stop or
        ``max_traces``.  With ``store_dir`` the campaign is durable: an
        existing store at that path is replayed and extended, so the same
        call resumes an interrupted campaign.

        With ``workers`` the campaign runs as a sharded
        :class:`~repro.runtime.parallel.ParallelCampaign` instead:
        ``shard_size``-trace shards with per-shard spawned seeds fan out
        over a process pool and the parent merges accumulators at
        shard-aligned checkpoints (``store_dir`` then becomes the root of
        per-shard stores).  The attack key and segment length are drawn
        from the scenario platform exactly as in the serial path, so both
        paths attack the same key.  ``attack_bytes`` optionally reduces
        the attack to the leading key bytes (parallel path only).

        ``distinguisher`` selects the attack statistic (a registry name or
        :class:`~repro.attacks.distinguishers.DistinguisherSpec`); the
        default is the first-order HW CPA with the given ``aggregate``.
        """
        platform = self.platform_for(spec)
        if workers is not None:
            campaign_spec = PlatformCampaignSpec(
                platform=self.platform_spec_for(spec),
                key=platform.random_key(),
                segment_length=int(
                    segment_length if segment_length is not None
                    else platform.mean_co_samples()
                ),
                batch_size=batch_size,
                attack_bytes=attack_bytes,
            )
            campaign = ParallelCampaign(
                campaign_spec,
                seed=spec.seed,
                workers=workers,
                shard_size=shard_size,
                store_root=store_dir,
                aggregate=aggregate,
                first_checkpoint=first_checkpoint,
                checkpoint_growth=checkpoint_growth,
                rank1_patience=rank1_patience,
                batch_size=batch_size if batch_size is not None else 256,
                distinguisher=distinguisher,
            )
            return campaign.run(max_traces, verbose=self.verbose)
        source = PlatformSegmentSource(
            platform, segment_length=segment_length, batch_size=batch_size
        )
        store = None
        if store_dir is not None:
            if is_shard_store_root(store_dir):
                raise ValueError(
                    f"{store_dir} holds per-shard stores from a parallel "
                    f"campaign; resume it with workers=, or point the "
                    f"serial campaign at a fresh directory"
                )
            store = TraceStore.open_or_create(
                store_dir,
                n_samples=source.n_samples,
                block_size=source.block_size,
                key=source.true_key,
                meta={"scenario": spec.describe(), "seed": spec.seed},
            )
        campaign = AttackCampaign(
            source,
            store=store,
            aggregate=aggregate,
            first_checkpoint=first_checkpoint,
            checkpoint_growth=checkpoint_growth,
            rank1_patience=rank1_patience,
            batch_size=batch_size if batch_size is not None else 256,
            distinguisher=distinguisher,
        )
        return campaign.run(max_traces, verbose=self.verbose)

    def run_ge_curve(
        self,
        spec: ScenarioSpec,
        max_traces: int,
        repetitions: int = 5,
        aggregate: int = 32,
        segment_length: int | None = None,
        first_checkpoint: int = 25,
        checkpoint_growth: float = 1.5,
        batch_size: int | None = None,
        distinguisher=None,
        accumulator=None,
        workers: int = 1,
    ):
        """Averaged guessing-entropy curve over independent repetitions.

        One streaming campaign per repetition, each on a fresh target
        seeded ``spec.seed + rep`` (fresh key, fresh countermeasure
        randomness, same configuration).  Every repetition is pinned to
        the same explicit checkpoint ladder so the per-checkpoint bins
        align, and early stopping is disabled — an averaged curve has to
        span the full trace budget even after rank 1 is reached.  The
        per-repetition ranks fold into a
        :class:`~repro.evaluation.ge_curves.GuessingEntropyAccumulator`
        (pass ``accumulator`` to continue one from earlier repetitions,
        e.g. a loaded checkpoint); the accumulator is returned.

        Repetitions are independent streams, so ``workers > 1`` fans them
        over a process pool — the accumulator still folds the records in
        repetition order, making the curve identical to the serial run's.
        The ``distinguisher`` must then be picklable (``None``, a registry
        name, or a ``DistinguisherSpec``), not a live accumulator.
        """
        from dataclasses import replace

        from repro.attacks.key_rank import geometric_checkpoints
        from repro.evaluation.ge_curves import (
            GuessingEntropyAccumulator,
        )

        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        ladder = geometric_checkpoints(
            max_traces, first=first_checkpoint, growth=checkpoint_growth
        )
        ge = accumulator if accumulator is not None \
            else GuessingEntropyAccumulator()
        if workers > 1:
            from concurrent.futures import ProcessPoolExecutor

            from repro.attacks.distinguishers import resolve_distinguisher
            from repro.runtime.parallel import _pool_context

            spec_or_none, _ = resolve_distinguisher(
                distinguisher, aggregate=aggregate
            )
            if spec_or_none is None:
                raise TypeError(
                    "run_ge_curve(workers=...) needs a picklable "
                    "DistinguisherSpec (or a registry name), not a live "
                    "accumulator — pool workers rebuild their own"
                )
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                futures = [
                    pool.submit(
                        _ge_repetition,
                        self.platform_spec_for(replace(spec, seed=spec.seed + rep)),
                        spec.seed + rep, segment_length, batch_size, ladder,
                        aggregate, spec_or_none, max_traces,
                    )
                    for rep in range(repetitions)
                ]
                for rep, future in enumerate(futures):
                    if self.verbose:
                        print(f"[engine] ge repetition {rep + 1}/"
                              f"{repetitions} (seed {spec.seed + rep}) ...")
                    ge.update(future.result())
            return ge
        for rep in range(repetitions):
            rep_spec = replace(spec, seed=spec.seed + rep)
            if self.verbose:
                print(f"[engine] ge repetition {rep + 1}/{repetitions} "
                      f"(seed {rep_spec.seed}) ...")
            ge.update(_ge_repetition(
                self.platform_spec_for(rep_spec), rep_spec.seed,
                segment_length, batch_size, ladder, aggregate,
                distinguisher, max_traces,
            ))
        return ge

    def run_campaigns(
        self,
        plan: BatchPlan,
        max_traces: int,
        store_root=None,
        **campaign_kwargs,
    ) -> "list[CampaignResult]":
        """Sweep streaming campaigns over a plan (cipher × RD × noise).

        One campaign per scenario, in plan order.  With ``store_root``
        each scenario persists under ``store_root/<scenario-slug>`` and a
        repeated sweep resumes every campaign from its own store.
        """
        results = []
        for spec in plan.scenarios:
            store_dir = None
            if store_root is not None:
                slug = spec.describe().replace(" ", "_").replace("=", "-")
                store_dir = Path(store_root) / slug
            if self.verbose:
                print(f"[engine] campaign {spec.describe()} "
                      f"(<= {max_traces} traces) ...")
            results.append(
                self.run_campaign(
                    spec, max_traces, store_dir=store_dir,
                    batch_size=plan.batch_size, **campaign_kwargs,
                )
            )
        return results
