"""Resumable streaming attack campaigns: capture → store → accumulate → rank.

An :class:`AttackCampaign` drives a segment source (typically a
:class:`PlatformSegmentSource` wrapping a
:class:`~repro.soc.platform.SimulatedPlatform`) in batches, appends every
batch to an optional on-disk :class:`~repro.campaign.store.TraceStore`,
folds it into an :class:`~repro.campaign.online.OnlineCpa` accumulator, and
evaluates key ranks at geometric checkpoints.  The campaign stops early
once every key byte has held rank 1 for ``rank1_patience`` consecutive
checkpoints (or, when the true key is unknown, once the recovered key has
been stable that long).

Compared to re-running the batch CPA at every checkpoint
(:func:`repro.attacks.key_rank.traces_to_rank1`), the streaming campaign
touches each trace exactly once: checkpointed rank convergence becomes one
incremental pass instead of O(checkpoints × full-CPA), and memory stays
constant in the trace count.  With a store attached the campaign is
durable — killing the process and constructing a new campaign over the
same store replays the persisted chunks into a fresh accumulator, fast-
forwards the source past them (``SegmentSource.skip``, so a seeded
simulation continues its capture stream rather than repeating it), and
keeps capturing where the store left off: an interrupted-and-resumed
campaign accumulates exactly the traces an uninterrupted one would.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.attacks.distinguishers import resolve_distinguisher
from repro.attacks.key_rank import MIN_CPA_TRACES, next_checkpoint
from repro.campaign import TraceStore
from repro.soc.platform import SimulatedPlatform

__all__ = [
    "SegmentSource",
    "PlatformSegmentSource",
    "CheckpointRecord",
    "CampaignResult",
    "AttackCampaign",
    "evaluate_checkpoint",
    "extends_streak",
    "streak_start",
]


class SegmentSource(Protocol):
    """Anything a campaign can pull equal-length attack segments from."""

    n_samples: int
    block_size: int
    true_key: bytes | None

    def capture(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Produce ``(count, n_samples)`` segments + ``(count, block_size)``
        plaintexts.

        Sources may additionally expose ``skip(count)`` to fast-forward
        past traces a resumed campaign already replayed from its store —
        deterministic (seeded) sources need this so post-resume captures
        continue the stream instead of repeating it.
        """
        ...  # pragma: no cover


class PlatformSegmentSource:
    """Capture hand-off from a simulated platform to a streaming campaign.

    Wraps :meth:`SimulatedPlatform.capture_attack_segments` with a key
    fixed for the campaign's lifetime (drawn from the platform when not
    supplied) and a segment length resolved once — by default the
    platform's empirical mean CO length, which covers the first-round
    S-box leakage under every random-delay configuration.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        key: bytes | None = None,
        segment_length: int | None = None,
        nop_header: int = 96,
        batch_size: int | None = None,
    ) -> None:
        self.platform = platform
        self.true_key = key if key is not None else platform.random_key()
        self.n_samples = int(
            segment_length if segment_length is not None
            else platform.mean_co_samples()
        )
        self.block_size = platform.cipher.block_size
        self.nop_header = int(nop_header)
        self.batch_size = batch_size

    def capture(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        return self.platform.capture_attack_segments(
            count,
            key=self.true_key,
            segment_length=self.n_samples,
            nop_header=self.nop_header,
            batch_size=self.batch_size,
        )

    def skip(self, count: int) -> None:
        """Fast-forward past ``count`` traces a resumed campaign replayed.

        The platform's randomness is one seeded stream consumed in capture
        order, so the only way to reach the state "after the first
        ``count`` captures" is to re-draw them; captures are re-executed
        and discarded.  This keeps a resumed campaign's stream identical
        to an uninterrupted one (chunking does not change the draws), at
        the cost of re-simulating the skipped traces — a hardware rig
        would simply keep capturing.
        """
        if count > 0:
            self.capture(count)


@dataclass(frozen=True)
class CheckpointRecord:
    """One rank evaluation of the accumulated statistics."""

    n_traces: int
    recovered_key: bytes
    ranks: tuple[int, ...] | None   # None when the true key is unknown
    correct_bytes: int | None       # recovered bytes matching the true key

    @property
    def max_rank(self) -> int | None:
        return None if self.ranks is None else max(self.ranks)

    @property
    def all_rank1(self) -> bool:
        return self.ranks is not None and all(r == 1 for r in self.ranks)


@dataclass
class CampaignResult:
    """Everything a finished (or exhausted) campaign measured."""

    records: list[CheckpointRecord]
    n_traces: int
    traces_to_rank1: int | None     # first checkpoint of the terminal streak
    early_stopped: bool
    recovered_key: bytes
    true_key: bytes | None
    resumed_from: int               # traces replayed from the store, if any
    store_path: str | None
    capture_seconds: float
    attack_seconds: float
    distinguisher: str = "cpa"      # registry name of the attack statistic
    partial: bool = False           # some shards exhausted their retries
    failed_shards: tuple[int, ...] = ()
    retries: int = 0                # shard retries spent across the run

    @property
    def key_recovered(self) -> bool:
        return self.true_key is not None and self.recovered_key == self.true_key

    def summary(self) -> str:
        """One-line outcome for logs and the CLI."""
        outcome = (
            f"rank 1 at {self.traces_to_rank1} traces"
            if self.traces_to_rank1 is not None
            else "rank 1 not reached"
        )
        if self.partial:
            stop = (
                f"PARTIAL: shards {list(self.failed_shards)} failed "
                f"after retries"
            )
        elif self.early_stopped:
            stop = "early stop"
        else:
            stop = "budget exhausted"
        return (
            f"{self.n_traces} traces ({self.resumed_from} resumed), "
            f"{len(self.records)} checkpoints, {outcome}, {stop}"
        )


class AttackCampaign:
    """Streaming capture→store→accumulate→checkpoint orchestrator.

    Parameters
    ----------
    source:
        A :class:`SegmentSource`; its ``true_key`` (when known, as in
        simulation) enables rank-based early stopping.
    store:
        Optional :class:`TraceStore` for durable, resumable campaigns.
        Existing content is replayed into the accumulator on construction
        and new captures are appended; ``None`` runs a pure in-memory
        stream.
    aggregate:
        Boxcar aggregation width applied by the accumulator (Section
        IV-C); also shrinks the sufficient statistics by the same factor.
        Ignored when ``distinguisher`` carries its own aggregation.
    distinguisher:
        The attack statistic: ``None`` (the historical first-order HW
        CPA), a registry name (``cpa``/``dpa``/``cpa2``/``lra``), a
        :class:`~repro.attacks.distinguishers.DistinguisherSpec`, or a
        fresh accumulator instance.  Store replay, checkpointing, and
        early stopping work identically for all of them.
    first_checkpoint, checkpoint_growth:
        The geometric checkpoint ladder (matching
        :func:`repro.attacks.key_rank.geometric_checkpoints`).
    checkpoints:
        An explicit checkpoint ladder overriding the geometric one —
        sharded parallel campaigns align their rungs to shard boundaries
        and hand the serial reference the same ladder.  Values are
        deduplicated, sorted, and filtered below the CPA minimum; past
        the last rung the campaign runs straight to ``max_traces``.
    rank1_patience:
        Consecutive all-rank-1 checkpoints required before stopping early
        (consecutive *stable-key* checkpoints when the true key is
        unknown).
    batch_size:
        Traces per capture batch — the campaign's peak per-step footprint.
    """

    def __init__(
        self,
        source: SegmentSource,
        store: TraceStore | None = None,
        true_key: bytes | None = None,
        aggregate: int = 1,
        first_checkpoint: int = 25,
        checkpoint_growth: float = 1.5,
        rank1_patience: int = 2,
        batch_size: int = 256,
        checkpoints: Sequence[int] | None = None,
        distinguisher=None,
    ) -> None:
        if checkpoint_growth <= 1.0:
            raise ValueError("checkpoint_growth must be > 1")
        if rank1_patience < 1:
            raise ValueError("rank1_patience must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if store is not None and store.n_samples != source.n_samples:
            raise ValueError(
                f"store holds {store.n_samples}-sample segments, source "
                f"produces {source.n_samples}"
            )
        if store is not None and store.block_size != source.block_size:
            raise ValueError(
                f"store holds {store.block_size}-byte plaintexts, source "
                f"produces {source.block_size}-byte ones"
            )
        self.source = source
        self.store = store
        self.true_key = (
            true_key if true_key is not None
            else getattr(source, "true_key", None)
        )
        self.distinguisher_spec, self.accumulator = resolve_distinguisher(
            distinguisher, aggregate=aggregate
        )
        self.aggregate = self.accumulator.aggregate
        self._min_traces = max(MIN_CPA_TRACES, self.accumulator.min_traces)
        self._ladder: tuple[int, ...] | None = None
        if checkpoints is not None:
            ladder = sorted(
                {int(c) for c in checkpoints if int(c) >= self._min_traces}
            )
            if not ladder:
                raise ValueError(
                    f"explicit checkpoint ladder has no value >= "
                    f"{self._min_traces}: {list(checkpoints)!r}"
                )
            self._ladder = tuple(ladder)
            first_checkpoint = ladder[0]
        self.first_checkpoint = max(int(first_checkpoint), self._min_traces)
        self.checkpoint_growth = float(checkpoint_growth)
        self.rank1_patience = int(rank1_patience)
        self.batch_size = int(batch_size)
        self.resumed_from = 0
        self.store_quarantined = 0
        if store is not None:
            # Quarantine any corrupt/orphaned tail before replay, so a
            # damaged store resumes (re-capturing the dropped suffix of
            # its deterministic stream) instead of crashing mid-replay.
            self.store_quarantined = len(store.recover().quarantined)
        if store is not None and len(store):
            for traces, plaintexts in store.iter_chunks(self.batch_size):
                self.accumulator.update(traces, plaintexts)
            self.resumed_from = len(store)
            skip = getattr(source, "skip", None)
            if skip is not None:
                skip(self.resumed_from)

    # ------------------------------------------------------------------ #
    # checkpoint schedule                                                #
    # ------------------------------------------------------------------ #

    def _next_checkpoint(self, n: int) -> int:
        """The first ladder value strictly above ``n``."""
        if self._ladder is not None:
            for value in self._ladder:
                if value > n:
                    return value
            # Past the explicit ladder: one final rung at the budget.
            return sys.maxsize
        return next_checkpoint(
            n, first=self.first_checkpoint, growth=self.checkpoint_growth
        )

    # ------------------------------------------------------------------ #
    # the campaign loop                                                  #
    # ------------------------------------------------------------------ #

    def run(self, max_traces: int, verbose: bool = False) -> CampaignResult:
        """Capture until early stop or ``max_traces`` accumulated traces.

        ``max_traces`` counts resumed traces too: resuming a 10 000-trace
        store with ``max_traces=15000`` captures at most 5 000 new ones.
        """
        if max_traces < self._min_traces:
            raise ValueError(f"max_traces must be >= {self._min_traces}")
        records: list[CheckpointRecord] = []
        streak = 0
        capture_seconds = 0.0
        attack_seconds = 0.0
        n = self.accumulator.n_traces

        # A resumed store may already sit past checkpoints: evaluate the
        # restored statistics once so early stopping can engage without
        # waiting for a full new ladder rung.
        if n >= self.first_checkpoint:
            begin = time.perf_counter()
            record = self._evaluate(n)
            attack_seconds += time.perf_counter() - begin
            records.append(record)
            streak = 1 if self._extends_streak(records) else 0

        stopped = streak >= self.rank1_patience
        while n < max_traces and not stopped:
            target = min(self._next_checkpoint(n), max_traces)
            while n < target:
                begin = time.perf_counter()
                traces, plaintexts = self.source.capture(min(self.batch_size, target - n))
                capture_seconds += time.perf_counter() - begin
                begin = time.perf_counter()
                if self.store is not None:
                    self.store.append(traces, plaintexts)
                n = self.accumulator.update(traces, plaintexts)
                attack_seconds += time.perf_counter() - begin
            begin = time.perf_counter()
            record = self._evaluate(n)
            attack_seconds += time.perf_counter() - begin
            records.append(record)
            streak = streak + 1 if self._extends_streak(records) else 0
            stopped = streak >= self.rank1_patience
            if verbose:
                rank = record.max_rank
                print(
                    f"[campaign] {n:>8d} traces: "
                    f"max rank {rank if rank is not None else '?'}, "
                    f"streak {streak}/{self.rank1_patience}"
                )

        return CampaignResult(
            records=records,
            n_traces=n,
            traces_to_rank1=self._traces_to_rank1(records, streak),
            early_stopped=stopped,
            recovered_key=(
                self.accumulator.recovered_key()
                if n >= self._min_traces
                else b""
            ),
            true_key=self.true_key,
            resumed_from=self.resumed_from,
            store_path=str(self.store.path) if self.store is not None else None,
            capture_seconds=capture_seconds,
            attack_seconds=attack_seconds,
            distinguisher=self.accumulator.name,
        )

    # ------------------------------------------------------------------ #
    # internals                                                          #
    # ------------------------------------------------------------------ #

    def _evaluate(self, n: int) -> CheckpointRecord:
        return evaluate_checkpoint(self.accumulator, self.true_key, n)

    def _extends_streak(self, records: list[CheckpointRecord]) -> bool:
        return extends_streak(records, self.true_key)

    def _traces_to_rank1(
        self, records: list[CheckpointRecord], streak: int
    ) -> int | None:
        return streak_start(records, self.true_key, streak)


# ---------------------------------------------------------------------- #
# checkpoint bookkeeping shared with the parallel campaign               #
# ---------------------------------------------------------------------- #


def evaluate_checkpoint(accumulator, true_key: bytes | None, n: int) -> CheckpointRecord:
    """Rank the accumulated statistics into one :class:`CheckpointRecord`."""
    recovered = accumulator.recovered_key()
    ranks = None
    correct = None
    if true_key is not None:
        ranks = tuple(accumulator.key_ranks(true_key))
        correct = sum(a == b for a, b in zip(recovered, true_key))
    return CheckpointRecord(
        n_traces=n, recovered_key=recovered, ranks=ranks, correct_bytes=correct
    )


def extends_streak(records: list[CheckpointRecord], true_key: bytes | None) -> bool:
    """Does the latest record continue the early-stop condition?

    With a known true key the condition is all bytes at rank 1; with an
    unknown key it is a recovered key stable across checkpoints.
    """
    latest = records[-1]
    if true_key is not None:
        return latest.all_rank1
    if len(records) < 2:
        return False
    return latest.recovered_key == records[-2].recovered_key


def streak_start(
    records: list[CheckpointRecord], true_key: bytes | None, streak: int
) -> int | None:
    """First checkpoint of the trailing success streak (Table II metric)."""
    if true_key is None or streak == 0:
        return None
    return records[len(records) - streak].n_traces
