"""Crash-safe campaign state journal.

A :class:`CampaignJournal` is a small JSON document under a campaign's
``store_root`` recording the campaign phase and the lifecycle state of
every shard (``queued`` → ``capturing`` → ``retrying``* → ``done`` /
``failed`` / ``quarantined``).  Every mutation rewrites the file through
:func:`~repro.campaign.store.atomic_write_json`, so a crash at any point
leaves either the previous or the next journal — never a torn one.  The
journal is *descriptive*, not authoritative: resume correctness comes
from the per-shard :class:`~repro.campaign.store.TraceStore` manifests;
the journal exists so ``repro campaign --status`` (and eventually the
ROADMAP's campaign registry) can answer "where is this run?" without
loading any trace data.
"""

from __future__ import annotations

from pathlib import Path
import json

from repro.campaign.store import atomic_write_json

__all__ = ["CampaignJournal"]

_JOURNAL = "journal.json"
_VERSION = 1

#: Terminal campaign phases, for humans reading ``describe()`` output.
_PHASES = (
    "capturing",
    "converged",
    "exhausted",
    "complete",
    "partial",
    "failed",
    "interrupted",
)


class CampaignJournal:
    """Per-shard state journal persisted atomically under ``root``."""

    def __init__(self, root, state: dict) -> None:
        self._root = Path(root)
        self._state = state

    # -- constructors --------------------------------------------------

    @classmethod
    def open_or_create(cls, root, kind: str, meta: dict | None = None) -> "CampaignJournal":
        """Open the journal under ``root``, creating it if absent.

        ``kind`` names the campaign flavour (``parallel_campaign`` /
        ``parallel_tvla``); reopening with a different kind is an error
        because it means two different campaigns share a ``store_root``.
        """
        path = Path(root) / _JOURNAL
        if path.exists():
            journal = cls.load(root)
            if journal._state["kind"] != kind:
                raise ValueError(
                    f"campaign journal at {path} belongs to a "
                    f"{journal._state['kind']!r} campaign, not {kind!r}"
                )
            if meta:
                journal._state["meta"].update(meta)
                journal._write()
            return journal
        state = {
            "version": _VERSION,
            "kind": kind,
            "phase": "capturing",
            "meta": dict(meta or {}),
            "shards": {},
        }
        journal = cls(root, state)
        journal._write()
        return journal

    @classmethod
    def load(cls, root) -> "CampaignJournal":
        """Load an existing journal; raises if missing or corrupt."""
        path = Path(root) / _JOURNAL
        if not path.exists():
            raise FileNotFoundError(f"no campaign journal at {path}")
        try:
            state = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt campaign journal at {path}: {exc}") from exc
        if (
            not isinstance(state, dict)
            or not isinstance(state.get("shards"), dict)
            or "kind" not in state
            or "phase" not in state
        ):
            raise ValueError(f"corrupt campaign journal at {path}: bad schema")
        return cls(root, state)

    # -- mutation ------------------------------------------------------

    def begin(self, total_shards: int) -> None:
        """Reset to a fresh run over ``total_shards`` queued shards."""
        self._state["phase"] = "capturing"
        self._state["shards"] = {
            str(index): {"state": "queued"} for index in range(int(total_shards))
        }
        self._write()

    def update_shard(self, index: int, state: str, **attrs) -> None:
        entry = self._state["shards"].setdefault(str(int(index)), {})
        entry["state"] = state
        if state == "retrying":
            entry["retries"] = entry.get("retries", 0) + 1
        entry.update(attrs)
        self._write()

    def set_phase(self, phase: str) -> None:
        self._state["phase"] = phase
        self._write()

    def _write(self) -> None:
        atomic_write_json(self._root / _JOURNAL, self._state)

    # -- inspection ----------------------------------------------------

    @property
    def kind(self) -> str:
        return self._state["kind"]

    @property
    def phase(self) -> str:
        return self._state["phase"]

    @property
    def meta(self) -> dict:
        return dict(self._state["meta"])

    def shard_states(self) -> dict[int, dict]:
        return {int(k): dict(v) for k, v in self._state["shards"].items()}

    def counts(self) -> dict[str, int]:
        """Shard-state histogram, e.g. ``{"done": 7, "failed": 1}``."""
        out: dict[str, int] = {}
        for entry in self._state["shards"].values():
            out[entry["state"]] = out.get(entry["state"], 0) + 1
        return out

    def describe(self) -> str:
        """Human-readable status block for ``repro campaign --status``."""
        shards = self.shard_states()
        lines = [
            f"campaign: {self.kind}",
            f"phase:    {self.phase}",
            f"shards:   {len(shards)}",
        ]
        counts = self.counts()
        for state in ("queued", "capturing", "retrying", "done",
                      "failed", "quarantined"):
            if state in counts:
                lines.append(f"  {state:<12}{counts.pop(state)}")
        for state, count in sorted(counts.items()):
            lines.append(f"  {state:<12}{count}")
        retried = sorted(i for i, e in shards.items() if e.get("retries"))
        if retried:
            total = sum(shards[i].get("retries", 0) for i in retried)
            lines.append(f"retries:  {total} (shards {retried})")
        failed = sorted(i for i, e in shards.items() if e["state"] == "failed")
        if failed:
            lines.append(f"failed shards: {failed}")
        for key, value in sorted(self.meta.items()):
            lines.append(f"meta.{key}: {value}")
        return "\n".join(lines)
