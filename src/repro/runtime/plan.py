"""Scenario sweeps: what the experiment engine should run.

A :class:`BatchPlan` is a declarative description of a sweep — the cross
product of ciphers, random-delay configurations, noise interleaving, and
oscilloscope noise levels — plus the batch size the engine's batched
primitives should use.  Scenarios that share a *condition* (cipher, RD,
SNR) also share a trained locator, so the plan exposes a grouped view the
engine iterates to avoid redundant training.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

__all__ = ["ScenarioSpec", "BatchPlan"]


@dataclass(frozen=True)
class ScenarioSpec:
    """One experimental condition for the capture→locate→attack pipeline."""

    cipher: str = "aes"
    max_delay: int = 4
    noise_interleaved: bool = True
    n_cos: int = 32
    noise_std: float = 1.0          # oscilloscope acquisition noise (SNR knob)
    seed: int = 1000                # target-platform seed (clone uses engine seed)
    shuffle: bool = False           # S-box shuffling countermeasure
    jitter: int = 0                 # clock-jitter strength (0 = off)
    masking_order: int = 1          # aes_masked share structure (order + 1 shares)

    @property
    def condition(self) -> tuple[str, int, float]:
        """The locator-sharing key: (cipher, RD, oscilloscope noise)."""
        return (self.cipher, self.max_delay, self.noise_std)

    def describe(self) -> str:
        """Human-readable scenario label for tables and logs."""
        mode = "noise" if self.noise_interleaved else "consecutive"
        label = f"{self.cipher} RD-{self.max_delay} {mode} x{self.n_cos}"
        if self.shuffle:
            label += " shuffle"
        if self.jitter:
            label += f" jitter={self.jitter}"
        if self.masking_order != 1:
            label += f" order={self.masking_order}"
        if self.noise_std != 1.0:
            label += f" sigma={self.noise_std:g}"
        return label


@dataclass(frozen=True)
class BatchPlan:
    """An ordered sweep of scenarios with a shared batching policy.

    ``batch_size`` is forwarded to every batched primitive the engine
    touches: profiling-capture chunking, and how many session traces share
    one dense-trunk scoring pass.
    """

    scenarios: tuple[ScenarioSpec, ...] = field(default_factory=tuple)
    batch_size: int = 32

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))

    @classmethod
    def sweep(
        cls,
        ciphers: Iterable[str] = ("aes",),
        max_delays: Iterable[int] = (4,),
        interleaving: Iterable[bool] = (True, False),
        n_cos: int = 32,
        noise_stds: Iterable[float] = (1.0,),
        base_seed: int = 1000,
        batch_size: int = 32,
        shuffle: bool = False,
        jitter: int = 0,
        masking_order: int = 1,
    ) -> "BatchPlan":
        """Cross product of the given axes, with per-scenario seeds.

        Scenario order groups by (cipher, RD, SNR) so the engine trains
        each condition's locator exactly once and reuses it across the
        interleaving variants.  The countermeasure knobs (``shuffle``,
        ``jitter``, ``masking_order``) apply to every scenario of the
        sweep.
        """
        scenarios = []
        index = 0
        for cipher in ciphers:
            for max_delay in max_delays:
                for noise_std in noise_stds:
                    for interleaved in interleaving:
                        scenarios.append(ScenarioSpec(
                            cipher=cipher,
                            max_delay=int(max_delay),
                            noise_interleaved=bool(interleaved),
                            n_cos=int(n_cos),
                            noise_std=float(noise_std),
                            seed=base_seed + index,
                            shuffle=bool(shuffle),
                            jitter=int(jitter),
                            masking_order=int(masking_order),
                        ))
                        index += 1
        return cls(scenarios=tuple(scenarios), batch_size=batch_size)

    def with_batch_size(self, batch_size: int) -> "BatchPlan":
        """A copy of the plan with a different batching policy."""
        return replace(self, batch_size=batch_size)

    def grouped(self) -> "list[tuple[tuple[str, int, float], list[ScenarioSpec]]]":
        """Scenarios grouped by locator-sharing condition, in plan order."""
        groups: dict[tuple[str, int, float], list[ScenarioSpec]] = {}
        order: list[tuple[str, int, float]] = []
        for spec in self.scenarios:
            if spec.condition not in groups:
                groups[spec.condition] = []
                order.append(spec.condition)
            groups[spec.condition].append(spec)
        return [(condition, groups[condition]) for condition in order]

    def conditions(self) -> "list[tuple[str, int, float]]":
        """Unique locator-sharing conditions, in plan order."""
        return [condition for condition, _ in self.grouped()]

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)
