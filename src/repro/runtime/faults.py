"""Deterministic fault injection for chaos-testing campaign execution.

A :class:`FaultPlan` names the shard indices of a campaign that should
fail, and how.  It is a frozen, picklable value, so it crosses the
process-pool boundary exactly like a
:class:`~repro.runtime.parallel.ShardSpec` does; ``run_shard`` /
``run_tvla_shard`` call :meth:`FaultPlan.maybe_fire` at their capture
boundary and the plan decides — deterministically — whether this attempt
dies.  "Attempts so far" is tracked as marker files under ``state_dir``
(one per firing), because a fault that kills its worker process cannot
carry a counter back in memory: the retry runs in a *fresh* process and
must observe that the fault already fired its ``times`` quota.

Fault kinds:

``crash``
    Raise :class:`InjectedFault` — a transient worker exception.
``hang``
    Sleep ``delay`` seconds, then continue.  Paired with a per-shard
    watchdog ``timeout`` shorter than ``delay`` this is an effectively
    hung shard the parent must cancel and requeue.
``exit``
    ``os._exit(exit_code)`` — the worker dies without unwinding, which
    the parent observes as a ``BrokenProcessPool``.  Only meaningful
    under a process pool: fired inline it kills the caller.
``partial_append``
    Write orphan payload files at the shard store's next index *without*
    updating the manifest, then raise — a crash in the window between
    payload write and manifest replace.  The retry's
    :meth:`~repro.campaign.store.TraceStore.recover` must quarantine the
    orphans and re-capture deterministically.

:func:`corrupt_store` is the post-hoc half of the harness: it damages an
already-durable shard payload (bit flip or truncation) so tests can pin
the quarantine-and-recapture path of a *resumed* campaign.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "corrupt_store",
]

FAULT_KINDS = ("crash", "hang", "exit", "partial_append")


class InjectedFault(RuntimeError):
    """A deliberate, plan-scheduled failure (never a real defect)."""


@dataclass(frozen=True)
class FaultSpec:
    """How one shard misbehaves.

    ``times`` bounds the firings (attempt ``times + 1`` succeeds);
    ``after`` delays the fault until the shard has captured that many
    traces, so mid-shard failures leave a durable prefix behind.
    """

    kind: str
    times: int = 1
    after: int = 0
    delay: float = 30.0
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.delay <= 0:
            raise ValueError("delay must be > 0")


@dataclass(frozen=True)
class FaultPlan:
    """A picklable schedule of per-shard faults with durable firing state."""

    state_dir: str
    faults: tuple[tuple[int, FaultSpec], ...] = ()

    @classmethod
    def single(cls, state_dir, index: int, kind: str, **kwargs) -> "FaultPlan":
        """One fault on one shard — the common chaos-test shape."""
        return cls(
            state_dir=str(state_dir),
            faults=((int(index), FaultSpec(kind=kind, **kwargs)),),
        )

    @classmethod
    def seeded(
        cls, state_dir, seed: int, n_shards: int, kind: str,
        rate: float = 0.25, **kwargs,
    ) -> "FaultPlan":
        """Fault a deterministic pseudo-random subset of the shards."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        spec = FaultSpec(kind=kind, **kwargs)
        draws = np.random.default_rng(int(seed)).random(int(n_shards))
        return cls(
            state_dir=str(state_dir),
            faults=tuple(
                (int(index), spec) for index in np.flatnonzero(draws < rate)
            ),
        )

    def spec_for(self, index: int) -> FaultSpec | None:
        for shard_index, spec in self.faults:
            if shard_index == int(index):
                return spec
        return None

    def fired(self, index: int) -> int:
        """How many times shard ``index``'s fault has fired, ever."""
        root = Path(self.state_dir)
        if not root.exists():
            return 0
        return len(list(root.glob(f"shard-{int(index):06d}.fired-*")))

    def _mark(self, index: int) -> None:
        root = Path(self.state_dir)
        root.mkdir(parents=True, exist_ok=True)
        (root / f"shard-{int(index):06d}.fired-{self.fired(index)}").touch()

    def maybe_fire(self, index: int, done: int = 0, store=None) -> None:
        """Fire shard ``index``'s fault if it is armed for this attempt.

        ``done`` is the shard's current captured-trace count (gates
        ``after``); ``store`` is the shard's open
        :class:`~repro.campaign.store.TraceStore` when one exists (the
        ``partial_append`` kind needs it; without a store it degrades to
        ``crash``).
        """
        spec = self.spec_for(index)
        if spec is None or done < spec.after:
            return
        if self.fired(index) >= spec.times:
            return
        self._mark(index)
        if spec.kind == "hang":
            time.sleep(spec.delay)
            return
        if spec.kind == "exit":
            os._exit(spec.exit_code)
        if spec.kind == "partial_append" and store is not None:
            _write_orphan_payload(store)
        raise InjectedFault(
            f"injected {spec.kind} fault in shard {int(index)}"
        )


def _write_orphan_payload(store) -> None:
    """Emulate a crash between payload write and manifest replace."""
    index = store.n_shards
    np.save(
        store.path / f"traces-{index:06d}.npy",
        np.zeros((3, store.n_samples), dtype=store.dtype),
    )
    np.save(
        store.path / f"plaintexts-{index:06d}.npy",
        np.zeros((3, store.block_size), dtype=np.uint8),
    )


def corrupt_store(path, mode: str = "bitflip", shard: int = -1) -> Path:
    """Damage one durable shard payload of the store at ``path``.

    ``bitflip`` inverts one byte mid-payload (only a recorded digest can
    catch it); ``truncate`` cuts the file in half (the structural check
    catches it).  Returns the damaged file's path.
    """
    manifest = json.loads((Path(path) / "manifest.json").read_text())
    entry = manifest["shards"][shard]
    target = Path(path) / entry["traces"]
    data = bytearray(target.read_bytes())
    if mode == "bitflip":
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
    elif mode == "truncate":
        target.write_bytes(bytes(data[: len(data) // 2]))
    else:
        raise ValueError(f"mode must be 'bitflip' or 'truncate', got {mode!r}")
    return target
