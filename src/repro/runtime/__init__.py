"""Batch-first experiment runtime.

The runtime layer turns the repository's batched primitives — vectorized
``encrypt_batch``, batched trace synthesis, batched sliding-window scoring —
into a scenario-sweep engine:

* :class:`~repro.runtime.plan.ScenarioSpec` — one experimental condition
  (cipher x random-delay x noise interleaving x oscilloscope SNR);
* :class:`~repro.runtime.plan.BatchPlan` — an ordered sweep of scenarios
  plus the batch size every batched primitive should use;
* :class:`~repro.runtime.engine.ExperimentEngine` — executes a plan:
  trains (and caches) one locator per condition, captures attack sessions
  through the batched platform paths, locates with
  :meth:`CryptoLocator.locate_many`, scores hits, and optionally mounts the
  CPA.

The CLI (``repro bench``), the ablation benchmarks, and the examples drive
their sweeps through this engine, so every workload shares the same batched
capture→locate→attack pipeline.

The streaming layer lives alongside the engine:
:class:`~repro.runtime.campaign.AttackCampaign` orchestrates resumable
capture→store→accumulate→checkpoint campaigns over the
:mod:`repro.campaign` primitives, and
:meth:`ExperimentEngine.run_campaigns` sweeps them across scenario plans.

:class:`~repro.runtime.parallel.ParallelCampaign` multiplies a campaign
across CPU cores: the trace budget is cut into deterministically seeded
shards (:func:`~repro.runtime.parallel.plan_shards`), workers capture and
accumulate shards in parallel processes, and the parent merges the
additive sufficient statistics at shard-aligned rank checkpoints —
bit-identical results regardless of the worker count.

Execution is fault tolerant: :class:`~repro.runtime.retry.ShardExecutor`
retries failed shards with exponential backoff (re-captures are
bit-identical by the deterministic-reseed property), rebuilds broken
pools, watchdogs hung shards, and degrades exhausted campaigns to
``partial`` results; :class:`~repro.runtime.journal.CampaignJournal`
records per-shard lifecycle states crash-safely under the store root;
:mod:`repro.runtime.faults` provides the deterministic fault-injection
harness the chaos suite drives all of it with.
"""

from repro.runtime.campaign import (
    AttackCampaign,
    CampaignResult,
    CheckpointRecord,
    PlatformSegmentSource,
)
from repro.runtime.engine import ExperimentEngine, ScenarioResult
from repro.runtime.faults import FaultPlan, FaultSpec, InjectedFault
from repro.runtime.journal import CampaignJournal
from repro.runtime.parallel import (
    ParallelCampaign,
    PlatformCampaignSpec,
    ReducedKeySource,
    ShardedSegmentSource,
    ShardSpec,
    plan_shards,
    run_shard,
    shard_aligned_checkpoints,
)
from repro.runtime.plan import BatchPlan, ScenarioSpec
from repro.runtime.retry import RetryPolicy, ShardExecutor, ShardFailure

__all__ = [
    "AttackCampaign",
    "BatchPlan",
    "CampaignJournal",
    "CampaignResult",
    "CheckpointRecord",
    "ExperimentEngine",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ParallelCampaign",
    "PlatformCampaignSpec",
    "PlatformSegmentSource",
    "ReducedKeySource",
    "RetryPolicy",
    "ScenarioResult",
    "ScenarioSpec",
    "ShardExecutor",
    "ShardFailure",
    "ShardSpec",
    "ShardedSegmentSource",
    "plan_shards",
    "run_shard",
    "shard_aligned_checkpoints",
]
