"""Batch-first experiment runtime.

The runtime layer turns the repository's batched primitives — vectorized
``encrypt_batch``, batched trace synthesis, batched sliding-window scoring —
into a scenario-sweep engine:

* :class:`~repro.runtime.plan.ScenarioSpec` — one experimental condition
  (cipher x random-delay x noise interleaving x oscilloscope SNR);
* :class:`~repro.runtime.plan.BatchPlan` — an ordered sweep of scenarios
  plus the batch size every batched primitive should use;
* :class:`~repro.runtime.engine.ExperimentEngine` — executes a plan:
  trains (and caches) one locator per condition, captures attack sessions
  through the batched platform paths, locates with
  :meth:`CryptoLocator.locate_many`, scores hits, and optionally mounts the
  CPA.

The CLI (``repro bench``), the ablation benchmarks, and the examples drive
their sweeps through this engine, so every workload shares the same batched
capture→locate→attack pipeline.

The streaming layer lives alongside the engine:
:class:`~repro.runtime.campaign.AttackCampaign` orchestrates resumable
capture→store→accumulate→checkpoint campaigns over the
:mod:`repro.campaign` primitives, and
:meth:`ExperimentEngine.run_campaigns` sweeps them across scenario plans.

:class:`~repro.runtime.parallel.ParallelCampaign` multiplies a campaign
across CPU cores: the trace budget is cut into deterministically seeded
shards (:func:`~repro.runtime.parallel.plan_shards`), workers capture and
accumulate shards in parallel processes, and the parent merges the
additive sufficient statistics at shard-aligned rank checkpoints —
bit-identical results regardless of the worker count.
"""

from repro.runtime.campaign import (
    AttackCampaign,
    CampaignResult,
    CheckpointRecord,
    PlatformSegmentSource,
)
from repro.runtime.engine import ExperimentEngine, ScenarioResult
from repro.runtime.parallel import (
    ParallelCampaign,
    PlatformCampaignSpec,
    ReducedKeySource,
    ShardedSegmentSource,
    ShardSpec,
    plan_shards,
    shard_aligned_checkpoints,
)
from repro.runtime.plan import BatchPlan, ScenarioSpec

__all__ = [
    "AttackCampaign",
    "BatchPlan",
    "CampaignResult",
    "CheckpointRecord",
    "ExperimentEngine",
    "ParallelCampaign",
    "PlatformCampaignSpec",
    "PlatformSegmentSource",
    "ReducedKeySource",
    "ScenarioResult",
    "ScenarioSpec",
    "ShardSpec",
    "ShardedSegmentSource",
    "plan_shards",
    "shard_aligned_checkpoints",
]
