"""Fault-tolerant shard dispatch: retry, backoff, watchdog, pool rebuild.

:class:`ShardExecutor` wraps shard execution — inline or over a
``ProcessPoolExecutor`` — with the failure semantics a long campaign
needs:

* a shard that raises is **retried** up to
  :attr:`RetryPolicy.max_retries` times with exponential backoff.  The
  reseed is *jitterless*: shard streams are pure functions of
  ``(campaign_seed, index)`` (see :func:`repro.runtime.parallel
  .shard_seed`), so the retry re-captures the bit-identical shard and no
  randomness needs to be perturbed for the retry to be safe;
* a ``BrokenProcessPool`` (worker killed by the OS, OOM, hard crash)
  **rebuilds the pool** and re-dispatches only the unfinished shards —
  results already shipped back are kept;
* an optional per-shard wall-clock ``timeout`` acts as a **watchdog** on
  the shard's future: a hung worker cannot be cancelled in-flight, so
  the pool is torn down (processes terminated) and rebuilt, which
  requeues the hung shard along with its unfinished siblings;
* when a shard exhausts its retries the executor records a
  :class:`ShardFailure` and raises it from :meth:`ShardExecutor.result`,
  letting the campaign degrade gracefully (merge the completed prefix,
  report ``partial``) instead of aborting with a raw pool error.

The executor is deliberately campaign-agnostic — it dispatches
``(fn, *args)`` tasks keyed by shard index — so :class:`~repro.runtime
.parallel.ParallelCampaign` and :class:`~repro.evaluation.parallel_tvla
.ParallelTvlaCampaign` share one fault-tolerance layer.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

__all__ = ["RetryPolicy", "ShardExecutor", "ShardFailure", "pool_context"]


def pool_context():
    """Prefer fork (cheap, inherits imports); fall back to the default."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None  # pragma: no cover - non-fork platforms


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to fight for each shard before giving up on it.

    ``max_retries`` counts *re*-executions (0 disables retry entirely);
    ``backoff`` seconds doubles on every consecutive failure of the same
    shard; ``timeout`` is the per-attempt wall-clock watchdog (``None``
    waits forever).
    """

    max_retries: int = 2
    backoff: float = 0.5
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be > 0 (or None to disable)")

    def delay(self, retries_done: int) -> float:
        """Backoff before retry number ``retries_done + 1``."""
        return self.backoff * (2.0 ** int(retries_done))


class ShardFailure(RuntimeError):
    """A shard that failed every attempt its :class:`RetryPolicy` allowed."""

    def __init__(self, index: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"shard {index} failed after {attempts} attempt(s): {cause!r}"
        )
        self.index = int(index)
        self.attempts = int(attempts)
        self.cause = cause


class ShardExecutor:
    """Dispatch shard tasks with retry, watchdog, and pool-rebuild logic.

    Tasks are keyed by shard index and must be **idempotent re-runnable**
    — in this codebase they are, by the deterministic-reseed property.
    With ``workers == 1`` and no timeout, tasks run inline at
    :meth:`result` time (no pool, no pickling); a timeout forces pool
    mode even at one worker, because only a separate process can be
    killed by the watchdog.

    ``on_event(index, state, retries)`` observes the shard lifecycle
    (``capturing`` / ``retrying`` / ``done`` / ``failed``) — the campaign
    journal hangs off this hook.  ``sleep`` is injectable so tests can
    pin backoff schedules without waiting them out.
    """

    def __init__(
        self,
        workers: int = 1,
        policy: RetryPolicy | None = None,
        on_event: Callable[[int, str, int], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.policy = policy if policy is not None else RetryPolicy()
        self._on_event = on_event
        self._sleep = sleep
        self._use_pool = self.workers > 1 or self.policy.timeout is not None
        self._pool: ProcessPoolExecutor | None = None
        self._tasks: dict[int, tuple] = {}
        self._futures: dict[int, object] = {}
        self._results: dict[int, object] = {}
        self._failures: dict[int, ShardFailure] = {}
        self.retries: dict[int, int] = {}
        self.pool_rebuilds = 0

    # -- bookkeeping ---------------------------------------------------

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    @property
    def failures(self) -> dict[int, ShardFailure]:
        return dict(self._failures)

    def _emit(self, index: int, state: str) -> None:
        if self._on_event is not None:
            self._on_event(index, state, self.retries.get(index, 0))

    # -- pool lifecycle ------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=pool_context()
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool

    def _kill_pool(self) -> None:
        """Terminate worker processes without waiting on their futures."""
        if self._pool is None:
            return
        for process in list(getattr(self._pool, "_processes", {}).values()):
            process.terminate()
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    def _rebuild_pool(self) -> None:
        """Replace a broken/hung pool, requeueing only unfinished shards.

        Futures that completed cleanly before the break are harvested
        into the result cache; futures holding a genuine task exception
        are kept as-is so :meth:`result` charges them against that
        shard's retry budget; everything else (running, queued,
        cancelled, or poisoned by the pool break itself) is re-submitted
        to the fresh pool.
        """
        self.pool_rebuilds += 1
        resubmit = []
        for index, future in list(self._futures.items()):
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is None:
                    self._results[index] = future.result()
                    del self._futures[index]
                    self._emit(index, "done")
                    continue
                if not isinstance(exc, BrokenProcessPool):
                    continue
            resubmit.append(index)
        self._kill_pool()
        pool = self._ensure_pool()
        for index in resubmit:
            fn, args = self._tasks[index]
            self._futures[index] = pool.submit(fn, *args)

    # -- the public surface --------------------------------------------

    def submit(self, index: int, fn, *args) -> None:
        """Queue shard ``index`` as ``fn(*args)`` (dispatches immediately
        in pool mode, lazily at :meth:`result` time inline)."""
        index = int(index)
        self._tasks[index] = (fn, args)
        if self._use_pool:
            try:
                self._futures[index] = self._ensure_pool().submit(fn, *args)
            except BrokenProcessPool:  # pragma: no cover - submit-time break
                self._rebuild_pool()
                self._futures[index] = self._pool.submit(fn, *args)
        self._emit(index, "capturing")

    def result(self, index: int):
        """Block for shard ``index``, retrying through the policy.

        Raises the shard's :class:`ShardFailure` once (and whenever asked
        again) after the retry budget is exhausted.
        """
        index = int(index)
        if index in self._results:
            return self._results[index]
        if index in self._failures:
            raise self._failures[index]
        if index not in self._tasks:
            raise KeyError(f"shard {index} was never submitted")
        fn, args = self._tasks[index]
        while True:
            recover = None
            try:
                if self._use_pool:
                    value = self._futures[index].result(
                        timeout=self.policy.timeout
                    )
                else:
                    value = fn(*args)
            except (KeyboardInterrupt, SystemExit):
                raise
            except FutureTimeoutError as exc:
                # Py >= 3.11 aliases this to builtin TimeoutError, so a
                # genuine in-task timeout lands here too — both mean "this
                # attempt is dead", and only a pool teardown can reclaim
                # the stuck worker.
                cause: BaseException = TimeoutError(
                    f"shard {index} exceeded the {self.policy.timeout}s "
                    f"watchdog"
                )
                cause.__cause__ = exc
                recover = "rebuild"
            except BrokenProcessPool as exc:
                cause = exc
                recover = "rebuild"
            except Exception as exc:
                cause = exc
                recover = "resubmit" if self._use_pool else None
            else:
                self._results[index] = value
                self._futures.pop(index, None)
                self._emit(index, "done")
                return value
            attempt = self.retries.get(index, 0) + 1
            if attempt > self.policy.max_retries:
                # Drop this shard's future *before* any rebuild so it is
                # not requeued, then rebuild anyway when the pool itself
                # is the casualty — the surviving shards need workers.
                self._futures.pop(index, None)
                if recover == "rebuild":
                    self._rebuild_pool()
                failure = ShardFailure(index, attempt, cause)
                self._failures[index] = failure
                self._emit(index, "failed")
                raise failure
            self.retries[index] = attempt
            self._emit(index, "retrying")
            self._sleep(self.policy.delay(attempt - 1))
            if recover == "rebuild":
                self._rebuild_pool()
            elif recover == "resubmit":
                self._futures[index] = self._ensure_pool().submit(fn, *args)

    def close(self, force: bool = False) -> None:
        """Shut the pool down.

        ``force`` terminates worker processes outright — required when a
        speculative shard may be hung (a graceful shutdown would block on
        it forever) and on interrupt, where zombie workers must not keep
        capturing after the parent dies.
        """
        if self._pool is None:
            return
        if force:
            self._kill_pool()
        else:
            self._pool.shutdown(cancel_futures=True)
            self._pool = None
