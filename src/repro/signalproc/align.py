"""Cross-correlation alignment helpers.

Used by the alignment stage of the inference pipeline to fine-tune CO cuts,
and by the matched-filter baseline of Barenghi et al. [10], which slides a
CO template over the trace and looks for normalised-correlation peaks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normalized_cross_correlation", "best_alignment_offset", "shift_signal"]

_EPS = 1e-12


def normalized_cross_correlation(trace: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Sliding normalised cross-correlation of ``template`` over ``trace``.

    Returns one Pearson-style correlation value in ``[-1, 1]`` per alignment
    of the template with a trace window, i.e. an array of length
    ``len(trace) - len(template) + 1``.  Windows with (near-)zero variance
    yield a correlation of 0.

    The computation is vectorised with cumulative sums so it stays
    ``O(len(trace))`` per template sample rather than materialising every
    window.
    """
    trace = np.asarray(trace, dtype=np.float64)
    template = np.asarray(template, dtype=np.float64)
    if trace.ndim != 1 or template.ndim != 1:
        raise ValueError("normalized_cross_correlation expects 1D inputs")
    n = template.size
    if n == 0:
        raise ValueError("template must be non-empty")
    if trace.size < n:
        return np.zeros(0)

    t = template - template.mean()
    t_norm = np.sqrt((t * t).sum())
    if t_norm < _EPS:
        return np.zeros(trace.size - n + 1)

    # Window sums / sums of squares via cumulative sums.
    csum = np.concatenate(([0.0], np.cumsum(trace)))
    csum2 = np.concatenate(([0.0], np.cumsum(trace * trace)))
    win_sum = csum[n:] - csum[:-n]
    win_sum2 = csum2[n:] - csum2[:-n]
    win_var = win_sum2 - win_sum * win_sum / n
    win_var = np.maximum(win_var, 0.0)

    # Cross term: correlate(trace, t) at "valid" alignments.
    cross = np.correlate(trace, t, mode="valid")
    denom = np.sqrt(win_var) * t_norm
    with np.errstate(invalid="ignore", divide="ignore"):
        ncc = np.where(denom > _EPS, cross / np.maximum(denom, _EPS), 0.0)
    return np.clip(ncc, -1.0, 1.0)


def best_alignment_offset(trace: np.ndarray, template: np.ndarray) -> int:
    """Offset at which ``template`` best matches ``trace`` (NCC argmax)."""
    ncc = normalized_cross_correlation(trace, template)
    if ncc.size == 0:
        return 0
    return int(np.argmax(ncc))


def shift_signal(signal: np.ndarray, shift: int, fill: float = 0.0) -> np.ndarray:
    """Shift a signal right by ``shift`` samples (left if negative).

    Vacated positions are filled with ``fill``; the output keeps the input
    length.  Used to align located COs onto a common time origin.
    """
    signal = np.asarray(signal, dtype=np.float64)
    out = np.full_like(signal, fill)
    if shift == 0:
        return signal.copy()
    if shift > 0:
        if shift < signal.size:
            out[shift:] = signal[:-shift]
    else:
        if -shift < signal.size:
            out[:shift] = signal[-shift:]
    return out
