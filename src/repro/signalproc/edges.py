"""Square-wave thresholding and edge extraction (Section III-D).

The segmentation stage turns the sliding-window classification signal into a
±1 square wave by thresholding (the ``Th`` block of Figure 1), cleans it with
a median filter, and finally reads off the rising edges: the positions where
two consecutive samples take the values -1 and +1.  Those positions, scaled
by the stride ``s``, are the CO start samples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["threshold_to_square_wave", "rising_edges", "falling_edges"]


def threshold_to_square_wave(signal: np.ndarray, threshold: float) -> np.ndarray:
    """Map each sample to +1 if it is above ``threshold``, else -1.

    Samples exactly equal to the threshold map to -1, i.e. only strictly
    greater values count as "above", so a flat signal at the threshold does
    not produce spurious CO detections.
    """
    signal = np.asarray(signal, dtype=np.float64)
    return np.where(signal > threshold, 1.0, -1.0)


def rising_edges(square_wave: np.ndarray) -> np.ndarray:
    """Indices ``i`` where ``square_wave[i-1] < 0 <= square_wave[i]``.

    The returned index points at the first +1 sample of each positive
    plateau, matching the paper's definition of the CO start marker.
    """
    square_wave = np.asarray(square_wave, dtype=np.float64)
    if square_wave.size < 2:
        return np.zeros(0, dtype=np.int64)
    prev_low = square_wave[:-1] < 0
    curr_high = square_wave[1:] >= 0
    return np.nonzero(prev_low & curr_high)[0].astype(np.int64) + 1


def falling_edges(square_wave: np.ndarray) -> np.ndarray:
    """Indices ``i`` where ``square_wave[i-1] >= 0 > square_wave[i]``."""
    square_wave = np.asarray(square_wave, dtype=np.float64)
    if square_wave.size < 2:
        return np.zeros(0, dtype=np.int64)
    prev_high = square_wave[:-1] >= 0
    curr_low = square_wave[1:] < 0
    return np.nonzero(prev_high & curr_low)[0].astype(np.int64) + 1
