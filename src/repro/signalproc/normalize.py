"""Normalisation utilities for side-channel traces and CNN inputs."""

from __future__ import annotations

import numpy as np

__all__ = ["standardize", "min_max_scale", "remove_dc"]

_EPS = 1e-12


def standardize(signal: np.ndarray, axis: int = -1) -> np.ndarray:
    """Zero-mean, unit-variance normalisation along ``axis``.

    Constant signals are mapped to all-zeros instead of dividing by zero,
    which is the behaviour the window classifier needs for e.g. all-NOP
    windows.
    """
    signal = np.asarray(signal, dtype=np.float64)
    mean = signal.mean(axis=axis, keepdims=True)
    std = signal.std(axis=axis, keepdims=True)
    return (signal - mean) / np.maximum(std, _EPS)


def min_max_scale(signal: np.ndarray, low: float = 0.0, high: float = 1.0) -> np.ndarray:
    """Affinely map a signal to the range ``[low, high]``.

    Constant signals map to ``low`` everywhere.
    """
    if high <= low:
        raise ValueError(f"invalid range [{low}, {high}]")
    signal = np.asarray(signal, dtype=np.float64)
    lo = signal.min()
    hi = signal.max()
    if hi - lo < _EPS:
        return np.full_like(signal, low)
    return low + (signal - lo) * (high - low) / (hi - lo)


def remove_dc(signal: np.ndarray) -> np.ndarray:
    """Subtract the mean of the signal (DC component removal)."""
    signal = np.asarray(signal, dtype=np.float64)
    return signal - signal.mean()
