"""Signal-processing primitives shared across the locating pipeline.

This subpackage collects the low-level 1D signal operations that the paper's
inference pipeline relies on: median filtering and square-wave thresholding
for the segmentation stage (Section III-D), normalisation utilities for
dataset creation, and cross-correlation helpers used by the alignment stage
and by the matched-filter baseline.
"""

from repro.signalproc.filters import (
    median_filter,
    moving_average,
    boxcar_aggregate,
    prepare_segments,
)
from repro.signalproc.normalize import (
    standardize,
    min_max_scale,
    remove_dc,
)
from repro.signalproc.edges import (
    threshold_to_square_wave,
    rising_edges,
    falling_edges,
)
from repro.signalproc.align import (
    normalized_cross_correlation,
    best_alignment_offset,
    shift_signal,
)

__all__ = [
    "median_filter",
    "moving_average",
    "boxcar_aggregate",
    "prepare_segments",
    "standardize",
    "min_max_scale",
    "remove_dc",
    "threshold_to_square_wave",
    "rising_edges",
    "falling_edges",
    "normalized_cross_correlation",
    "best_alignment_offset",
    "shift_signal",
]
