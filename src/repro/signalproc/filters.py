"""1D filtering primitives used by the segmentation stage and the attacks.

The paper's segmentation stage (Section III-D) applies a median filter of
size ``k`` to the thresholded sliding-window-classification signal; the CPA
attack (Section IV-C) uses a "minor aggregation over time" to absorb residual
misalignment, which :func:`boxcar_aggregate` implements.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "median_filter",
    "moving_average",
    "boxcar_aggregate",
    "prepare_segments",
]


def median_filter(signal: np.ndarray, size: int) -> np.ndarray:
    """Replace each sample with the median of its ``size`` neighbours.

    The window is centred on each sample; the signal is edge-padded so the
    output has the same length as the input, matching the behaviour the
    paper's MF block needs at trace boundaries.

    Parameters
    ----------
    signal:
        One-dimensional input signal.
    size:
        Median window size ``k``.  Must be a positive odd integer so the
        window has a well-defined centre.

    Returns
    -------
    numpy.ndarray
        Filtered signal with the same shape and dtype ``float64``.
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError(f"median_filter expects a 1D signal, got shape {signal.shape}")
    if size < 1 or size % 2 == 0:
        raise ValueError(f"median filter size must be a positive odd integer, got {size}")
    if size == 1 or signal.size == 0:
        return signal.copy()
    half = size // 2
    padded = np.pad(signal, half, mode="edge")
    windows = np.lib.stride_tricks.sliding_window_view(padded, size)
    return np.median(windows, axis=-1)


def moving_average(signal: np.ndarray, size: int) -> np.ndarray:
    """Centred moving average with edge padding (same-length output)."""
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError(f"moving_average expects a 1D signal, got shape {signal.shape}")
    if size < 1:
        raise ValueError(f"moving average size must be positive, got {size}")
    if size == 1 or signal.size == 0:
        return signal.copy()
    pad_left = (size - 1) // 2
    pad_right = size - 1 - pad_left
    padded = np.pad(signal, (pad_left, pad_right), mode="edge")
    kernel = np.full(size, 1.0 / size)
    return np.convolve(padded, kernel, mode="valid")


def prepare_segments(traces: np.ndarray, aggregate: int = 1) -> np.ndarray:
    """Shared attack pre-processing: float64 segments, optional aggregation.

    The single call site for the Section IV-C boxcar aggregation that the
    batch CPA/DPA and every online distinguisher apply before their
    statistics — one place to validate the ``(n, m)`` segment shape and the
    aggregation width instead of each attack repeating it.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise ValueError(f"expected (n, m) trace segments, got {traces.shape}")
    if aggregate < 1:
        raise ValueError(f"aggregation width must be positive, got {aggregate}")
    if aggregate > 1:
        traces = boxcar_aggregate(traces, aggregate)
    return traces


def boxcar_aggregate(traces: np.ndarray, width: int) -> np.ndarray:
    """Sum consecutive samples in non-overlapping windows of ``width``.

    This is the "minor aggregation over time" of Section IV-C: summing
    ``width`` consecutive samples accumulates leakage that random delay has
    spread over neighbouring sample positions, at the cost of temporal
    resolution.  Works on a single trace (1D) or a batch of traces (2D,
    ``(n_traces, n_samples)``); trailing samples that do not fill a complete
    window are dropped.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if width < 1:
        raise ValueError(f"aggregation width must be positive, got {width}")
    if traces.ndim == 1:
        return boxcar_aggregate(traces[None, :], width)[0]
    if traces.ndim != 2:
        raise ValueError(f"boxcar_aggregate expects 1D or 2D input, got shape {traces.shape}")
    n_windows = traces.shape[1] // width
    if n_windows == 0:
        return np.zeros((traces.shape[0], 0))
    trimmed = traces[:, : n_windows * width]
    return trimmed.reshape(traces.shape[0], n_windows, width).sum(axis=2)
