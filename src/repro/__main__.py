"""Command-line interface: ``python -m repro <command>``.

Eight commands mirror the attacker workflow on the simulated platform:

* ``train``  — profile a clone device and train a locator, saving it to
  an ``.npz`` artefact;
* ``locate`` — load a locator, capture an attack session, and report the
  located CO starts against the simulator's ground truth;
* ``attack`` — the full Table-II flow: locate, align, CPA, key recovery;
* ``bench``  — sweep scenarios (cipher x RD x interleaving x SNR) through
  the batched :class:`~repro.runtime.ExperimentEngine` and print a
  Table-II-style summary;
* ``campaign`` — a streaming attack campaign: capture batches flow into a
  constant-memory online distinguisher (and optionally an on-disk trace
  store), with geometric key-rank checkpoints and early stopping;
  re-running with the same ``--store`` resumes where the store left off,
  ``--workers N`` fans deterministically seeded trace shards out over a
  process pool (merging the accumulators at every checkpoint), and
  ``--distinguisher`` picks the attack statistic — first-order ``cpa`` /
  ``dpa``, ``lra``, the second-order ``cpa2`` that defeats the masked
  AES target, or the profiled ``template`` / ``nnp`` (which need
  ``--profile DIR``);
* ``profile`` — the profiling phase of a profiled attack: capture
  known-key traces into a store, rank POIs, fit Gaussian templates or
  per-byte NN classifiers, and save a reusable profile directory;
* ``assess`` — SNR / Welch-t (TVLA-style) leakage maps over a known-key
  trace store, with the customary |t| > 4.5 leakage verdict;
* ``tvla``   — the non-specific fixed-vs-random TVLA: interleaved capture
  of the two populations straight off the platform (no pre-existing
  store needed), a streaming Welch-t verdict, and ``--grid`` to sweep
  the built-in countermeasure matrix (baseline, shuffling, RD+jitter,
  first- and second-order masking) in one command.

The capture countermeasures stack via ``--countermeasure`` (``shuffle``,
``jitter``/``jitter-N``, comma-separated, on top of ``--rd``) and
``--masking-order 2`` for the three-share masked AES datapath.

Parallel campaigns (``campaign``/``tvla`` with ``--workers``) are fault
tolerant: failed shards retry with exponential backoff (``--max-retries``
/ ``--retry-backoff``), hung shards are cancelled by the ``--shard-timeout``
watchdog, and a run whose shards exhaust their retries exits 3 with a
partial result over the merged prefix (exit 4 when no shard completed at
all; re-running the same command resumes just the missing work).
``--status`` prints the campaign journal kept under ``--store``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.config import default_config
from repro.core.locator import CryptoLocator
from repro.evaluation import match_hits
from repro.evaluation.experiments import default_tolerance
from repro.soc import SimulatedPlatform


def _parse_window(text: str) -> tuple[int, int]:
    """Parse a ``START:STOP`` sample-window argument."""
    try:
        start, stop = text.split(":")
        return int(start), int(stop)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected START:STOP sample window, got {text!r}"
        ) from None


_COUNTERMEASURE_CHOICES = "none, shuffle, jitter, jitter-N (N in 1..99)"


def _parse_countermeasures(text: str | None) -> tuple[bool, int] | None:
    """Parse ``--countermeasure`` into ``(shuffle, jitter_strength)``.

    Accepts a comma-separated combination of ``none``, ``shuffle``,
    ``jitter`` (strength 10) and ``jitter-N``.  Prints the valid choices
    and returns ``None`` for anything else — the caller exits 2.
    """
    shuffle = False
    jitter = 0
    for token in (text or "none").split(","):
        token = token.strip().lower()
        if token in ("", "none"):
            continue
        if token == "shuffle":
            shuffle = True
        elif token == "jitter":
            jitter = 10
        elif token.startswith("jitter-"):
            try:
                jitter = int(token[len("jitter-"):])
            except ValueError:
                jitter = -1
            if not 1 <= jitter <= 99:
                print(f"invalid jitter strength in {token!r}; valid "
                      f"countermeasures: {_COUNTERMEASURE_CHOICES}",
                      file=sys.stderr)
                return None
        else:
            print(f"unknown countermeasure {token!r}; valid choices: "
                  f"{_COUNTERMEASURE_CHOICES}", file=sys.stderr)
            return None
    return shuffle, jitter


def _distinguisher_spec(args: argparse.Namespace, cipher: str | None = None):
    """Validate the distinguisher CLI options into a buildable spec.

    Prints the valid choices and returns ``None`` (the caller exits 2) for
    unknown distinguisher / leakage-model names or inconsistent options —
    the registry raises ``ValueError`` listing the valid names, so one
    ``spec.build()`` probe covers every combination.
    """
    from repro.attacks.distinguishers import (
        DistinguisherSpec,
        masked_aes_windows,
    )

    window1 = getattr(args, "window1", None)
    window2 = getattr(args, "window2", None)
    aggregate = args.aggregate
    profile = getattr(args, "profile", None)
    if args.distinguisher in ("template", "nnp") and aggregate != 1:
        # Profiles score the raw sample space they were built in.
        aggregate = 1
        print(f"{args.distinguisher} scores the profile's sample space; "
              f"aggregate forced to 1")
    if args.distinguisher == "cpa2" and window1 is None and window2 is None:
        if cipher != "aes_masked":
            print("cpa2 needs --window1/--window2 sample windows (they are "
                  "derived automatically only for --cipher aes_masked)",
                  file=sys.stderr)
            return None
        if getattr(args, "rd", 0) != 0:
            print("cpa2 window derivation needs --rd 0: random delay "
                  "smears the two op windows apart, so the sample pairing "
                  "(and the attack) breaks under RD-2/RD-4",
                  file=sys.stderr)
            return None
        countermeasures = _parse_countermeasures(
            getattr(args, "countermeasure", None)
        )
        if countermeasures is None:
            return None
        if countermeasures != (False, 0):
            print("cpa2 window derivation needs a deterministic op layout: "
                  "shuffling permutes the two op windows and clock jitter "
                  "drifts the sample grid, so the fixed sample pairing "
                  "breaks under --countermeasure shuffle/jitter",
                  file=sys.stderr)
            return None
        shares = getattr(args, "masking_order", 1) + 1
        window1, window2 = masked_aes_windows(shares=shares)
        # The derived windows live in raw sample space; aggregation would
        # shift them.
        aggregate = 1
        print(f"cpa2 windows (derived, {shares} shares): "
              f"{window1[0]}:{window1[1]} x "
              f"{window2[0]}:{window2[1]}, aggregate forced to 1")
    spec = DistinguisherSpec(
        name=args.distinguisher,
        leakage_model=args.leakage_model,
        aggregate=aggregate,
        window1=window1,
        window2=window2,
        basis=getattr(args, "basis", "bits"),
        profile=profile,
    )
    try:
        spec.build()
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return None
    return spec


def _check_profile_target(spec, args: argparse.Namespace) -> int | None:
    """Cross-check a profiled spec against the campaign's target options.

    Returns the profile's segment length (for defaulting
    ``--segment-length``) or ``None`` after printing the mismatch — a
    profile built on one cipher/RD configuration scores garbage on
    another, so refusing beats silently diverging.
    """
    from repro.profiled import load_manifest

    try:
        manifest = load_manifest(spec.profile)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return None
    meta = manifest.get("meta", {})
    for option in ("cipher", "rd"):
        profiled = meta.get(option)
        requested = getattr(args, option)
        if profiled is not None and profiled != requested:
            print(f"profile {spec.profile} was built on "
                  f"--{option} {profiled}, campaign targets "
                  f"--{option} {requested}", file=sys.stderr)
            return None
    segment_length = int(manifest["segment_length"])
    if args.segment_length is not None and args.segment_length != segment_length:
        print(f"profile {spec.profile} was built on {segment_length}-sample "
              f"segments; --segment-length {args.segment_length} cannot be "
              f"scored against it", file=sys.stderr)
        return None
    return segment_length


def _add_fault_tolerance_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="failed-shard retry budget before the campaign degrades to a "
             "partial result (default 2; only with --workers)")
    parser.add_argument(
        "--retry-backoff", type=float, default=None,
        help="base seconds of exponential per-shard retry backoff "
             "(default 0.5; only with --workers)")
    parser.add_argument(
        "--shard-timeout", type=float, default=None,
        help="per-shard wall-clock watchdog in seconds; hung shards are "
             "cancelled and requeued (only with --workers)")
    parser.add_argument(
        "--status", action="store_true",
        help="report the campaign journal under --store and exit")


def _add_capture_mode_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--capture-mode", default="exact", choices=("exact", "fast"),
        help="capture randomness path: 'exact' is bit-identical to the "
             "scalar reference, 'fast' draws batch randomness in bulk "
             "(statistically identical stream, much faster capture)")
    parser.add_argument(
        "--backend", default=None, choices=("numpy", "numba"),
        help="array backend for the synthesis/accumulation hot kernels; "
             "'numba' JIT-compiles them when numba is installed (warns "
             "and falls back to numpy otherwise); default: the "
             "REPRO_BACKEND environment variable, then numpy")


def _apply_backend(args: argparse.Namespace) -> None:
    """Activate ``--backend`` and export it to campaign worker processes."""
    if getattr(args, "backend", None):
        import os

        from repro.backend import BACKEND_ENV, set_backend

        set_backend(args.backend)
        os.environ[BACKEND_ENV] = args.backend


def _add_countermeasure_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--countermeasure", default="none",
        help=f"software/clock countermeasures on top of the random delay, "
             f"comma-separated: {_COUNTERMEASURE_CHOICES}")
    parser.add_argument(
        "--masking-order", type=int, default=1, choices=(1, 2),
        help="boolean masking order for --cipher aes_masked "
             "(2 = three-share second-order datapath)")


def _resolve_countermeasures(
    args: argparse.Namespace, ciphers=None
) -> tuple[bool, int] | None:
    """Validate the countermeasure options against the other target options.

    Returns ``(shuffle, jitter)`` or ``None`` after printing the problem
    (unknown name, masking order on an unmasked cipher, jitter under fast
    capture) — the caller exits 2.
    """
    ciphers = list(ciphers) if ciphers is not None else [args.cipher]
    countermeasures = _parse_countermeasures(
        getattr(args, "countermeasure", None)
    )
    if countermeasures is None:
        return None
    shuffle, jitter = countermeasures
    unmasked = [c for c in ciphers if c != "aes_masked"]
    if getattr(args, "masking_order", 1) != 1 and unmasked:
        print(f"--masking-order {args.masking_order} needs cipher "
              f"aes_masked; {', '.join(unmasked)} has no masked datapath",
              file=sys.stderr)
        return None
    unshuffleable = [c for c in ciphers if c != "aes"]
    if shuffle and unshuffleable:
        print(f"--countermeasure shuffle is only wired for cipher aes "
              f"({', '.join(unshuffleable)} declares no shuffle groups)",
              file=sys.stderr)
        return None
    if jitter and getattr(args, "capture_mode", "exact") == "fast":
        print("--countermeasure jitter resamples whole traces and is not "
              "supported with --capture-mode fast", file=sys.stderr)
        return None
    return shuffle, jitter


def _check_store_config(path, capture_mode: str, countermeasure: str) -> bool:
    """Refuse resuming a store captured under a different configuration.

    Probes the existing store's manifest *before* ``open_or_create`` gets
    to enforce the capture key, so the user sees which configuration
    knob actually diverged (the countermeasure TRNG also shifts the
    derived key, which would otherwise surface as an opaque key
    mismatch).  Returns ``False`` after printing when the store holds
    traces from another capture mode or countermeasure stack.
    """
    from repro.campaign import TraceStore

    try:
        store = TraceStore.open(path)
    except FileNotFoundError:
        return True
    if not len(store):
        return True
    stored_mode = store.meta.get("capture_mode", "exact")
    if stored_mode != capture_mode:
        print(f"{path} was captured in {stored_mode!r} capture mode; "
              f"resuming it in {capture_mode!r} would splice two "
              f"different trace streams", file=sys.stderr)
        return False
    stored_cm = store.meta.get("countermeasure")
    if stored_cm is not None and stored_cm != countermeasure:
        print(f"{path} was captured under countermeasure {stored_cm!r}; "
              f"resuming it under {countermeasure!r} would splice two "
              f"different trace streams", file=sys.stderr)
        return False
    return True


def _add_distinguisher_options(
    parser: argparse.ArgumentParser, windows: bool = True
) -> None:
    parser.add_argument("--distinguisher", default="cpa",
                        help="attack statistic: cpa, dpa, cpa2 "
                             "(second-order, vs masking) or lra")
    parser.add_argument("--leakage-model", default=None,
                        help="leakage hypothesis (hw, msb, lsb, identity, "
                             "hd); default: the distinguisher's own")
    parser.add_argument("--basis", default="bits",
                        help="LRA regression basis (bits or hw)")
    parser.add_argument("--profile", default=None,
                        help="saved profile directory for the profiled "
                             "distinguishers (template / nnp); create one "
                             "with `repro profile`")
    if windows:
        parser.add_argument("--window1", type=_parse_window, default=None,
                            help="cpa2 first sample window, START:STOP")
        parser.add_argument("--window2", type=_parse_window, default=None,
                            help="cpa2 second sample window, START:STOP")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cipher", default="aes",
                        choices=("aes", "aes_masked", "camellia", "clefia", "simon"))
    parser.add_argument("--rd", type=int, default=4, choices=(0, 2, 4),
                        help="random-delay configuration")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1 / 32,
                        help="dataset scale relative to Table I")


def cmd_train(args: argparse.Namespace) -> int:
    """``repro train``: profile a clone and persist a trained locator."""
    config = default_config(args.cipher, dataset_scale=args.scale)
    clone = SimulatedPlatform(args.cipher, max_delay=args.rd, seed=args.seed)
    locator = CryptoLocator(config, seed=args.seed + 1)
    print(f"training {args.cipher} locator under RD-{args.rd} ...")
    history = locator.fit_from_platform(clone, verbose=True)
    locator.save(args.output)
    print(f"best epoch {history.best_epoch}; saved to {args.output}")
    return 0


def _load_locator(args: argparse.Namespace) -> CryptoLocator:
    config = default_config(args.cipher, dataset_scale=args.scale)
    return CryptoLocator(config, seed=args.seed + 1).load(args.model)


def cmd_locate(args: argparse.Namespace) -> int:
    """``repro locate``: find COs in a fresh attack session."""
    locator = _load_locator(args)
    target = SimulatedPlatform(args.cipher, max_delay=args.rd, seed=args.seed + 100)
    session = target.capture_session_trace(
        args.cos, noise_interleaved=not args.consecutive
    )
    starts = locator.locate(session.trace)
    stats = match_hits(starts, session.true_starts, default_tolerance(locator.config))
    print(f"located {starts.size} COs in a {session.trace.size}-sample trace")
    print(f"vs ground truth: {stats}")
    return 0 if stats.hit_rate > 0 else 1


def cmd_attack(args: argparse.Namespace) -> int:
    """``repro attack``: locate, align, and run the CPA key recovery."""
    from repro.attacks import CpaAttack

    locator = _load_locator(args)
    target = SimulatedPlatform(args.cipher, max_delay=args.rd, seed=args.seed + 100)
    session = target.capture_session_trace(
        args.cos, noise_interleaved=not args.consecutive
    )
    located = locator.locate(session.trace)
    segments, kept = locator.align(session.trace, starts=located)
    if segments.shape[0] < 8:
        print("not enough located COs for a CPA", file=sys.stderr)
        return 1
    located_kept = located[kept]
    nearest = np.abs(
        located_kept[:, None] - session.true_starts[None, :]
    ).argmin(axis=1)
    plaintexts = np.frombuffer(
        b"".join(session.plaintexts[i] for i in nearest), dtype=np.uint8
    ).reshape(-1, 16)
    recovered = CpaAttack(aggregate=args.aggregate).recovered_key(segments, plaintexts)
    correct = sum(a == b for a, b in zip(recovered, session.key))
    print(f"true key      : {session.key.hex()}")
    print(f"recovered key : {recovered.hex()}")
    print(f"{correct}/16 key bytes correct")
    return 0 if correct == 16 else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: engine-driven scenario sweep with batched capture."""
    from repro.ciphers import available_ciphers
    from repro.evaluation import format_table
    from repro.runtime import BatchPlan, ExperimentEngine, ScenarioResult

    _apply_backend(args)
    ciphers = [c.strip() for c in args.ciphers.split(",") if c.strip()]
    unknown = sorted(set(ciphers) - set(available_ciphers()))
    if unknown:
        print(f"unknown cipher(s): {', '.join(unknown)}; "
              f"available: {', '.join(available_ciphers())}", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print("--batch-size must be >= 1", file=sys.stderr)
        return 2
    if args.distinguisher == "cpa2":
        print("cpa2 needs explicit sample windows; run it through "
              "`repro campaign --distinguisher cpa2`", file=sys.stderr)
        return 2
    if args.distinguisher in ("template", "nnp"):
        print(f"{args.distinguisher} scores fixed profile segments; run it "
              f"through `repro campaign --distinguisher {args.distinguisher} "
              f"--profile DIR`", file=sys.stderr)
        return 2
    countermeasures = _resolve_countermeasures(args, ciphers=ciphers)
    if countermeasures is None:
        return 2
    shuffle, jitter = countermeasures
    distinguisher = _distinguisher_spec(args)
    if distinguisher is None:
        return 2
    if not args.cpa or (args.distinguisher, args.leakage_model) == ("cpa", None):
        # The historical batch HW-CPA path (bit-identical output) unless a
        # non-default distinguisher was actually requested.
        distinguisher = None
    plan = BatchPlan.sweep(
        ciphers=ciphers,
        max_delays=[int(r) for r in args.rds.split(",") if r.strip()],
        interleaving=(True, False) if args.scenarios == "both"
        else (args.scenarios == "noise",),
        n_cos=args.cos,
        noise_stds=[float(s) for s in args.noise_stds.split(",") if s.strip()],
        base_seed=args.seed + 100,
        batch_size=args.batch_size,
        shuffle=shuffle,
        jitter=jitter,
        masking_order=args.masking_order,
    )
    engine = ExperimentEngine(
        dataset_scale=args.scale,
        seed=args.seed,
        method=args.engine,
        verbose=True,
        capture_mode=args.capture_mode,
    )
    results = engine.run(plan, with_cpa=args.cpa, aggregate=args.aggregate,
                         distinguisher=distinguisher)
    print()
    print(format_table(
        ScenarioResult.header(),
        [r.row() for r in results],
        title=f"Engine sweep ({len(plan)} scenarios, batch size {plan.batch_size})",
    ))
    worst = min((r.stats.hit_rate for r in results), default=0.0)
    return 0 if worst >= 0.5 else 1


def _campaign_status(store) -> int:
    """``--status``: report the journal under a parallel store root."""
    from pathlib import Path

    from repro.runtime.journal import CampaignJournal

    if store is None:
        print("--status needs --store (the campaign's store root)",
              file=sys.stderr)
        return 2
    root = Path(store)
    if not root.exists():
        print(f"no campaign at {store}: directory does not exist",
              file=sys.stderr)
        return 2
    try:
        journal = CampaignJournal.load(root)
    except FileNotFoundError:
        if (root / "manifest.json").exists():
            print(f"{store} holds a serial trace store (no journal); "
                  f"journals are written by parallel campaigns (--workers)",
                  file=sys.stderr)
        else:
            print(f"no campaign journal under {store}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"{error}; delete journal.json to reset it", file=sys.stderr)
        return 2
    print(journal.describe())
    return 0


def _resolve_fault_tolerance(args) -> tuple[int, float, float | None] | None:
    """Validate the retry flags; ``None`` means reject with exit 2."""
    if args.workers is None and any(
        value is not None
        for value in (args.max_retries, args.retry_backoff, args.shard_timeout)
    ):
        print("--max-retries/--retry-backoff/--shard-timeout apply to the "
              "sharded parallel path; pass --workers", file=sys.stderr)
        return None
    max_retries = 2 if args.max_retries is None else args.max_retries
    backoff = 0.5 if args.retry_backoff is None else args.retry_backoff
    if max_retries < 0:
        print("--max-retries must be >= 0", file=sys.stderr)
        return None
    if backoff < 0:
        print("--retry-backoff must be >= 0", file=sys.stderr)
        return None
    if args.shard_timeout is not None and args.shard_timeout <= 0:
        print("--shard-timeout must be > 0 seconds", file=sys.stderr)
        return None
    return max_retries, backoff, args.shard_timeout


def cmd_campaign(args: argparse.Namespace) -> int:
    """``repro campaign``: streaming capture→store→accumulate→rank attack."""
    from repro.campaign import TraceStore
    from repro.evaluation import format_campaign
    from repro.runtime.campaign import AttackCampaign, PlatformSegmentSource
    from repro.soc.platform import PlatformSpec

    if args.status:
        return _campaign_status(args.store)
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    fault_tolerance = _resolve_fault_tolerance(args)
    if fault_tolerance is None:
        return 2
    _apply_backend(args)
    countermeasures = _resolve_countermeasures(args)
    if countermeasures is None:
        return 2
    shuffle, jitter = countermeasures
    spec = _distinguisher_spec(args, cipher=args.cipher)
    if spec is None:
        return 2
    segment_length = args.segment_length
    if spec.profile is not None:
        segment_length = _check_profile_target(spec, args)
        if segment_length is None:
            return 2
        if args.segment_length is None:
            print(f"segment length {segment_length} (from the profile)")
    platform_spec = PlatformSpec(
        cipher_name=args.cipher, max_delay=args.rd, noise_std=args.noise_std,
        capture_mode=args.capture_mode, shuffle=shuffle, jitter=jitter,
        masking_order=args.masking_order,
    )
    platform = platform_spec.build(args.seed)
    source = PlatformSegmentSource(
        platform, segment_length=segment_length, batch_size=args.batch_size
    )
    if args.workers is not None:
        return _run_parallel_campaign(
            args, source, spec, platform_spec, fault_tolerance
        )
    store = None
    if args.store is not None:
        from repro.runtime.parallel import is_shard_store_root

        if is_shard_store_root(args.store):
            print(f"{args.store} holds per-shard stores from a parallel "
                  f"campaign; resume it with --workers", file=sys.stderr)
            return 2
        if not _check_store_config(args.store, args.capture_mode,
                                   platform.countermeasure_name):
            return 2
        try:
            store = TraceStore.open_or_create(
                args.store,
                n_samples=source.n_samples,
                block_size=source.block_size,
                key=source.true_key,
                meta={"cipher": args.cipher, "rd": args.rd,
                      "seed": args.seed,
                      "capture_mode": args.capture_mode,
                      "countermeasure": platform.countermeasure_name},
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(f"store: {store.path} ({len(store)} traces on disk)")
    campaign = AttackCampaign(
        source,
        store=store,
        first_checkpoint=args.first_checkpoint,
        checkpoint_growth=args.growth,
        rank1_patience=args.patience,
        batch_size=args.batch_size,
        distinguisher=spec,
    )
    if campaign.resumed_from:
        print(f"resumed {campaign.resumed_from} traces from the store")
    print(f"campaign: {args.cipher} RD-{args.rd}, {spec.name} distinguisher, "
          f"{source.n_samples}-sample segments, aggregate {spec.aggregate}, "
          f"<= {args.traces} traces")
    result = campaign.run(args.traces, verbose=True)
    exit_code = _report_campaign(result)
    if store is not None:
        print(f"store now holds {len(store)} traces "
              f"({store.nbytes() / 1e6:.1f} MB on disk)")
    return exit_code


def cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: known-key profiling campaign → saved profile."""
    from pathlib import Path

    from repro.campaign import TraceStore
    from repro.profiled import (
        ProfilingCampaign,
        fit_nn_profile,
        fit_template_profile,
        masked_byte_pois,
    )
    from repro.runtime.campaign import PlatformSegmentSource
    from repro.soc.platform import PlatformSpec

    _apply_backend(args)
    countermeasures = _resolve_countermeasures(args)
    if countermeasures is None:
        return 2
    shuffle, jitter = countermeasures
    if shuffle or jitter:
        print("profiling assumes a fixed per-sample operation layout; "
              "shuffling permutes it and clock jitter drifts it, so "
              "--countermeasure shuffle/jitter cannot be profiled",
              file=sys.stderr)
        return 2
    masked = args.cipher == "aes_masked"
    if masked and args.rd != 0:
        print("profiling the masked target needs --rd 0: random delay "
              "smears the share operations apart, so the fixed POI layout "
              "(and the profile) breaks under RD-2/RD-4", file=sys.stderr)
        return 2
    shares = args.masking_order + 1
    model = args.model or ("hd" if masked else "hw")
    segment_length = args.segment_length
    if segment_length is None and masked:
        from repro.attacks.distinguishers import masked_aes_windows

        segment_length = masked_aes_windows(shares=shares)[1][1] + 16
    platform = PlatformSpec(
        cipher_name=args.cipher, max_delay=args.rd, noise_std=args.noise_std,
        capture_mode=args.capture_mode, masking_order=args.masking_order,
    ).build(args.seed)
    source = PlatformSegmentSource(
        platform, segment_length=segment_length, batch_size=args.batch_size
    )
    output = Path(args.output)
    store_path = args.store if args.store is not None else output / "traces"
    if not _check_store_config(store_path, args.capture_mode,
                               platform.countermeasure_name):
        return 2
    try:
        store = TraceStore.open_or_create(
            store_path,
            n_samples=source.n_samples,
            block_size=source.block_size,
            key=source.true_key,
            meta={"cipher": args.cipher, "rd": args.rd, "seed": args.seed,
                  "capture_mode": args.capture_mode,
                  "countermeasure": platform.countermeasure_name},
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    campaign = ProfilingCampaign(
        source, store, model=model, batch_size=args.batch_size
    )
    if campaign.resumed_from:
        print(f"resumed {campaign.resumed_from} traces from the store")
    print(f"profiling: {args.cipher} RD-{args.rd}, {model} classes, "
          f"{source.n_samples}-sample segments, {args.traces} traces")
    result = campaign.run(args.traces, verbose=True)
    print(f"captured in {result.capture_seconds:.1f}s")
    if masked:
        # First-order SNR is blind on the masked target; the POIs come
        # from the known operation layout instead.
        pois = masked_byte_pois(source.block_size, shares=shares)
        print("POIs: share-operation layout (SNR is blind under masking)")
    else:
        pois = result.select_pois(args.pois, min_spacing=args.min_spacing)
        print(f"POIs: top {args.pois} SNR samples per byte")
    meta = {"cipher": args.cipher, "rd": args.rd,
            "noise_std": args.noise_std, "seed": args.seed,
            "masking_order": args.masking_order}
    if args.kind == "template":
        pooled = (not masked) if args.covariance == "auto" \
            else args.covariance == "pooled"
        if masked and pooled:
            print("warning: pooled covariance cannot represent the masked "
                  "target's joint leakage; expect chance-level ranks",
                  file=sys.stderr)
        profile = fit_template_profile(
            result.store, store.key, model=model, pois=pois,
            pooled=pooled, meta=meta,
        )
    else:
        combine = masked if args.combine == "auto" else args.combine == "yes"
        profile = fit_nn_profile(
            result.store, store.key, model=model, pois=pois,
            hidden=args.hidden, combine=combine, epochs=args.epochs,
            batch_size=args.nn_batch_size, lr=args.lr, seed=args.seed,
            meta=meta, verbose=True,
        )
    profile.save(output)
    print(profile.describe())
    print(f"profile saved to {output}")
    return 0


def cmd_assess(args: argparse.Namespace) -> int:
    """``repro assess``: SNR / Welch-t leakage maps over a trace store."""
    from repro.attacks.assessment import TVLA_THRESHOLD
    from repro.campaign import TraceStore
    from repro.profiled import ClassStats

    store = TraceStore.open(args.store)
    if store.key is None:
        print(f"{args.store} records no capture key; leakage assessment "
              f"needs known-key (profiling) traces", file=sys.stderr)
        return 2
    if not len(store):
        print(f"{args.store} is empty", file=sys.stderr)
        return 2
    stored_cm = store.meta.get("countermeasure")
    if (args.expect_countermeasure is not None
            and stored_cm != args.expect_countermeasure):
        print(f"{args.store} records countermeasure {stored_cm!r}, not "
              f"{args.expect_countermeasure!r}; assessing it would answer "
              f"a different configuration's question", file=sys.stderr)
        return 2
    stats = ClassStats(store.key, model=args.model)
    for traces, plaintexts in store.iter_chunks(args.batch_size):
        stats.update(traces, plaintexts)
    snr = stats.snr()
    welch_t = stats.welch_t()
    peak_t = float(np.abs(welch_t).max())
    config = f", {stored_cm}" if stored_cm is not None else ""
    print(f"assessed {stats.n_traces} traces x {store.n_samples} samples, "
          f"{args.model} classes{config}")
    print(f"{'byte':>4}  {'max SNR':>9}  {'@sample':>7}  "
          f"{'max |t|':>9}  {'@sample':>7}")
    for b in range(snr.shape[0]):
        s_at = int(snr[b].argmax())
        t_at = int(np.abs(welch_t[b]).argmax())
        print(f"{b:>4}  {snr[b, s_at]:>9.4f}  {s_at:>7}  "
              f"{abs(welch_t[b, t_at]):>9.2f}  {t_at:>7}")
    if args.output is not None:
        np.savez_compressed(args.output, snr=snr, welch_t=welch_t)
        print(f"maps saved to {args.output}")
    leaks = peak_t >= TVLA_THRESHOLD
    print(f"peak |t| = {peak_t:.2f} "
          f"({'exceeds' if leaks else 'below'} the TVLA threshold "
          f"{TVLA_THRESHOLD})")
    return 0 if leaks else 1


#: The ``repro tvla --grid`` scenario matrix: (cipher, rd, shuffle,
#: jitter, masking order).  The hiding rows (shuffle, jitter) smear but
#: keep first-order leakage — they fail at a few hundred traces per
#: population — while the two masked rows pass.  Random delay is left
#: out of the hiding rows: its cumulative drift already de-aligns the
#: sample grid so far that naive sample-aligned TVLA loses power (which
#: is precisely why the attack pipeline re-locates COs first).
_TVLA_GRID = (
    ("aes", 0, False, 0, 1),
    ("aes", 0, True, 0, 1),
    ("aes", 0, False, 10, 1),
    ("aes_masked", 0, False, 0, 1),
    ("aes_masked", 0, False, 0, 2),
)


def _run_tvla_grid(args: argparse.Namespace) -> int:
    """``repro tvla --grid``: the built-in countermeasure verdict table."""
    from repro.evaluation import ParallelTvlaCampaign, TvlaCampaign
    from repro.soc.platform import PlatformSpec

    if args.store is not None or args.output is not None:
        print("--store/--output are per-configuration; run grid entries "
              "individually to persist them", file=sys.stderr)
        return 2
    suffix = "" if args.workers is None else f", {args.workers} workers"
    print(f"tvla grid: {len(_TVLA_GRID)} configurations, "
          f"{args.traces} traces per population{suffix}")
    for cipher, rd, shuffle, jitter, order in _TVLA_GRID:
        spec = PlatformSpec(
            cipher_name=cipher, max_delay=rd, noise_std=args.noise_std,
            # Jitter resamples whole traces, which only the exact capture
            # path supports.
            capture_mode="exact" if jitter else args.capture_mode,
            shuffle=shuffle, jitter=jitter, masking_order=order,
        )
        if args.workers is not None:
            campaign = ParallelTvlaCampaign(
                spec, seed=args.seed, workers=args.workers,
                shard_size=args.shard_size, batch_size=args.batch_size,
            )
        else:
            campaign = TvlaCampaign(
                spec, seed=args.seed, batch_size=args.batch_size,
            )
        result = campaign.run(args.traces)
        print(f"  {cipher:>10}  {result.summary()}")
    return 0


def cmd_tvla(args: argparse.Namespace) -> int:
    """``repro tvla``: fixed-vs-random Welch-t leakage detection."""
    from repro.evaluation import ParallelTvlaCampaign, TvlaCampaign
    from repro.soc.platform import PlatformSpec

    if args.status:
        return _campaign_status(args.store)
    _apply_backend(args)
    if args.traces < 2:
        print("--traces must be >= 2 (per population)", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.shard_size < 1:
        print("--shard-size must be >= 1", file=sys.stderr)
        return 2
    fault_tolerance = _resolve_fault_tolerance(args)
    if fault_tolerance is None:
        return 2
    if args.grid:
        return _run_tvla_grid(args)
    countermeasures = _resolve_countermeasures(args)
    if countermeasures is None:
        return 2
    shuffle, jitter = countermeasures
    spec = PlatformSpec(
        cipher_name=args.cipher, max_delay=args.rd, noise_std=args.noise_std,
        capture_mode=args.capture_mode, shuffle=shuffle, jitter=jitter,
        masking_order=args.masking_order,
    )
    if args.workers is not None:
        from repro.runtime.retry import ShardFailure

        max_retries, retry_backoff, shard_timeout = fault_tolerance
        try:
            campaign = ParallelTvlaCampaign(
                spec, seed=args.seed, workers=args.workers,
                shard_size=args.shard_size,
                segment_length=args.segment_length,
                store_root=args.store, batch_size=args.batch_size,
                max_retries=max_retries, retry_backoff=retry_backoff,
                shard_timeout=shard_timeout,
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        print(f"tvla x{args.workers}: {campaign.countermeasure_name} on "
              f"{args.cipher}, {campaign.segment_length}-sample segments, "
              f"{args.traces} traces per population in shards of "
              f"{args.shard_size}")
        try:
            result = campaign.run(args.traces, verbose=True)
        except ShardFailure as failure:
            tail = (f" (captured traces persist under {args.store})"
                    if args.store is not None else "")
            print(f"tvla campaign failed: {failure} — no shard completed; "
                  f"re-run the same command to try again{tail}",
                  file=sys.stderr)
            return 4
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
        if campaign.resumed_from:
            print(f"resumed {campaign.resumed_from} traces from the "
                  f"shard stores")
        print(result.summary())
        if args.output is not None:
            campaign.accumulator.save(args.output)
            print(f"t statistics saved to {args.output}")
        if result.partial:
            print(f"PARTIAL RESULT: shards {list(result.failed_shards)} "
                  f"exhausted their retries; the verdict covers the merged "
                  f"shard prefix only. Re-run the same command to retry "
                  f"just the failed shards.", file=sys.stderr)
            return 3
        return 0 if result.leakage_detected else 1
    if args.store is not None:
        from repro.runtime.parallel import is_shard_store_root

        if is_shard_store_root(args.store):
            print(f"{args.store} holds per-shard stores from a parallel "
                  f"TVLA campaign; resume it with --workers",
                  file=sys.stderr)
            return 2
    try:
        campaign = TvlaCampaign(
            spec, seed=args.seed, segment_length=args.segment_length,
            store_dir=args.store, batch_size=args.batch_size,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if campaign.resumed_from:
        print(f"resumed {campaign.resumed_from} traces from the store")
    print(f"tvla: {campaign.countermeasure_name} on {args.cipher}, "
          f"{campaign.segment_length}-sample segments, "
          f"{args.traces} traces per population")
    result = campaign.run(args.traces, verbose=True)
    print(result.summary())
    if args.output is not None:
        campaign.accumulator.save(args.output)
        print(f"t statistics saved to {args.output}")
    return 0 if result.leakage_detected else 1


def _report_campaign(result) -> int:
    """Shared campaign outcome report.

    Exit codes: 0 once rank 1 was reached, 1 for an exhausted budget, 3
    for a partial run (some shards exhausted their retries).
    """
    from repro.evaluation import format_campaign

    print()
    print(format_campaign(result))
    print()
    print(f"true key      : {result.true_key.hex()}")
    print(f"recovered key : {result.recovered_key.hex()}")
    print(result.summary())
    if result.partial:
        print(f"PARTIAL RESULT: shards {list(result.failed_shards)} "
              f"exhausted their retries; ranks cover the merged shard "
              f"prefix only. Re-run the same command to retry just the "
              f"failed shards.", file=sys.stderr)
        return 3
    return 0 if result.traces_to_rank1 is not None else 1


def _run_parallel_campaign(
    args: argparse.Namespace, source, spec, platform_spec, fault_tolerance
) -> int:
    """``repro campaign --workers N``: the sharded process-parallel path."""
    from repro.runtime.parallel import ParallelCampaign, PlatformCampaignSpec
    from repro.runtime.retry import ShardFailure

    max_retries, retry_backoff, shard_timeout = fault_tolerance
    campaign_spec = PlatformCampaignSpec(
        platform=platform_spec,
        key=source.true_key,
        segment_length=source.n_samples,
        batch_size=args.batch_size,
    )
    campaign = ParallelCampaign(
        campaign_spec,
        seed=args.seed,
        workers=args.workers,
        shard_size=args.shard_size,
        store_root=args.store,
        first_checkpoint=args.first_checkpoint,
        checkpoint_growth=args.growth,
        rank1_patience=args.patience,
        batch_size=args.batch_size,
        distinguisher=spec,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        shard_timeout=shard_timeout,
    )
    print(f"parallel campaign: {args.cipher} RD-{args.rd}, "
          f"{spec.name} distinguisher, "
          f"{args.workers} workers x {args.shard_size}-trace shards, "
          f"{source.n_samples}-sample segments, aggregate {spec.aggregate}, "
          f"<= {args.traces} traces")
    if args.store is not None:
        print(f"store root: {args.store} (one trace store per shard)")
    try:
        result = campaign.run(args.traces, verbose=True)
    except ShardFailure as failure:
        tail = (f" (captured traces persist under {args.store})"
                if args.store is not None else "")
        print(f"campaign failed: {failure} — no shard completed; re-run "
              f"the same command to try again{tail}", file=sys.stderr)
        return 4
    return _report_campaign(result)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_train = sub.add_parser("train", help="profile a clone and train a locator")
    _add_common(p_train)
    p_train.add_argument("--output", default="locator.npz")
    p_train.set_defaults(func=cmd_train)

    p_locate = sub.add_parser("locate", help="locate COs in an attack session")
    _add_common(p_locate)
    p_locate.add_argument("--model", default="locator.npz")
    p_locate.add_argument("--cos", type=int, default=24)
    p_locate.add_argument("--consecutive", action="store_true")
    p_locate.set_defaults(func=cmd_locate)

    p_attack = sub.add_parser("attack", help="locate + align + CPA key recovery")
    _add_common(p_attack)
    p_attack.add_argument("--model", default="locator.npz")
    p_attack.add_argument("--cos", type=int, default=512)
    p_attack.add_argument("--aggregate", type=int, default=64)
    p_attack.add_argument("--consecutive", action="store_true")
    p_attack.set_defaults(func=cmd_attack)

    p_bench = sub.add_parser(
        "bench", help="sweep scenarios through the batched experiment engine"
    )
    p_bench.add_argument("--ciphers", default="aes",
                         help="comma-separated cipher names")
    p_bench.add_argument("--rds", default="4",
                         help="comma-separated random-delay configs (0/2/4)")
    p_bench.add_argument("--scenarios", default="both",
                         choices=("both", "noise", "consecutive"))
    p_bench.add_argument("--cos", type=int, default=32,
                         help="COs per attack session")
    p_bench.add_argument("--noise-stds", default="1.0",
                         help="comma-separated oscilloscope noise levels")
    p_bench.add_argument("--batch-size", type=int, default=32,
                         help="traces per batched capture/scoring call")
    p_bench.add_argument("--engine", default="windowed",
                         choices=("windowed", "dense"),
                         help="sliding-window scoring engine")
    p_bench.add_argument("--cpa", action="store_true",
                         help="also mount the key-recovery attack per scenario")
    p_bench.add_argument("--aggregate", type=int, default=64)
    _add_capture_mode_option(p_bench)
    _add_countermeasure_options(p_bench)
    _add_distinguisher_options(p_bench, windows=False)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--scale", type=float, default=1 / 32,
                         help="dataset scale relative to Table I")
    p_bench.set_defaults(func=cmd_bench)

    p_campaign = sub.add_parser(
        "campaign",
        help="streaming online-distinguisher campaign with an optional "
             "on-disk store",
    )
    p_campaign.add_argument(
        "--cipher", default="aes",
        choices=("aes", "aes_masked", "camellia", "clefia", "simon"))
    p_campaign.add_argument(
        "--rd", type=int, default=0, choices=(0, 2, 4),
        help="random-delay configuration (RD-2/RD-4 need tens of thousands "
             "of traces to converge — that is what the streaming pipeline "
             "is for)")
    p_campaign.add_argument("--seed", type=int, default=0)
    p_campaign.add_argument("--traces", type=int, default=512,
                            help="trace budget (resumed traces included)")
    p_campaign.add_argument("--store", default=None,
                            help="trace-store directory; reuse to resume")
    p_campaign.add_argument("--segment-length", type=int, default=None,
                            help="samples per segment (default: mean CO length)")
    p_campaign.add_argument("--aggregate", type=int, default=8,
                            help="CPA time-aggregation width (use ~32-64 "
                                 "under RD-2/RD-4)")
    p_campaign.add_argument("--batch-size", type=int, default=256,
                            help="traces per capture batch")
    p_campaign.add_argument("--first-checkpoint", type=int, default=25)
    p_campaign.add_argument("--growth", type=float, default=1.5,
                            help="checkpoint ladder growth factor")
    p_campaign.add_argument("--patience", type=int, default=2,
                            help="consecutive rank-1 checkpoints before "
                                 "early stop")
    p_campaign.add_argument("--noise-std", type=float, default=1.0,
                            help="oscilloscope acquisition noise")
    p_campaign.add_argument("--workers", type=int, default=None,
                            help="run the sharded process-parallel campaign "
                                 "with this many workers")
    p_campaign.add_argument("--shard-size", type=int, default=1024,
                            help="traces per parallel shard (seed and "
                                 "checkpoint granularity)")
    _add_fault_tolerance_options(p_campaign)
    _add_capture_mode_option(p_campaign)
    _add_countermeasure_options(p_campaign)
    _add_distinguisher_options(p_campaign)
    p_campaign.set_defaults(func=cmd_campaign)

    p_profile = sub.add_parser(
        "profile",
        help="known-key profiling campaign: capture, rank POIs, fit and "
             "save a template or NN profile directory",
    )
    p_profile.add_argument(
        "--cipher", default="aes",
        choices=("aes", "aes_masked", "camellia", "clefia", "simon"))
    p_profile.add_argument("--rd", type=int, default=0, choices=(0, 2, 4))
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument("--traces", type=int, default=4096,
                           help="profiling trace budget (resumed included)")
    p_profile.add_argument("--output", required=True,
                           help="profile directory to create")
    p_profile.add_argument("--store", default=None,
                           help="profiling trace-store directory (default: "
                                "OUTPUT/traces); reuse to resume")
    p_profile.add_argument("--kind", default="template",
                           choices=("template", "nn"),
                           help="profile family: Gaussian templates or "
                                "per-byte MLP classifiers")
    p_profile.add_argument("--model", default=None,
                           help="leakage model labelling the classes "
                                "(default: hd for aes_masked, else hw)")
    p_profile.add_argument("--segment-length", type=int, default=None,
                           help="samples per segment (default: derived for "
                                "aes_masked, else mean CO length)")
    p_profile.add_argument("--pois", type=int, default=3,
                           help="POIs per byte by SNR rank (ignored for "
                                "aes_masked, which uses the share layout)")
    p_profile.add_argument("--min-spacing", type=int, default=1,
                           help="minimum sample distance between POIs")
    p_profile.add_argument("--covariance", default="auto",
                           choices=("auto", "pooled", "class"),
                           help="template covariance: pooled across classes "
                                "or per class (auto: per class only for "
                                "aes_masked, whose leakage is "
                                "covariance-only)")
    p_profile.add_argument("--hidden", type=int, default=32,
                           help="nn hidden width")
    p_profile.add_argument("--combine", default="auto",
                           choices=("auto", "yes", "no"),
                           help="nn centred-product feature combining "
                                "(auto: only for aes_masked)")
    p_profile.add_argument("--epochs", type=int, default=10)
    p_profile.add_argument("--nn-batch-size", type=int, default=128)
    p_profile.add_argument("--lr", type=float, default=1e-3)
    p_profile.add_argument("--batch-size", type=int, default=256,
                           help="traces per capture batch")
    p_profile.add_argument("--noise-std", type=float, default=1.0)
    _add_capture_mode_option(p_profile)
    _add_countermeasure_options(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_assess = sub.add_parser(
        "assess",
        help="SNR / Welch-t leakage assessment over a known-key trace store",
    )
    p_assess.add_argument("--store", required=True,
                          help="trace-store directory to assess")
    p_assess.add_argument("--model", default="hw",
                          help="leakage model defining the class split")
    p_assess.add_argument("--output", default=None,
                          help="save the per-byte SNR / t maps to this .npz")
    p_assess.add_argument("--batch-size", type=int, default=1024,
                          help="traces per streamed chunk")
    p_assess.add_argument("--expect-countermeasure", default=None,
                          help="refuse the store unless its recorded "
                               "countermeasure name (e.g. RD-0+SH-20x16) "
                               "matches")
    p_assess.set_defaults(func=cmd_assess)

    p_tvla = sub.add_parser(
        "tvla",
        help="fixed-vs-random TVLA leakage detection, single configuration "
             "or the built-in countermeasure grid",
    )
    p_tvla.add_argument(
        "--cipher", default="aes",
        choices=("aes", "aes_masked", "camellia", "clefia", "simon"))
    p_tvla.add_argument("--rd", type=int, default=0, choices=(0, 2, 4),
                        help="random-delay configuration")
    p_tvla.add_argument("--seed", type=int, default=0)
    p_tvla.add_argument("--traces", type=int, default=256,
                        help="traces per population (fixed and random; "
                             "resumed traces included)")
    p_tvla.add_argument("--store", default=None,
                        help="trace-store directory; reuse to resume")
    p_tvla.add_argument("--segment-length", type=int, default=None,
                        help="samples per segment (default: mean CO length)")
    p_tvla.add_argument("--batch-size", type=int, default=256,
                        help="traces per interleaved capture round")
    p_tvla.add_argument("--noise-std", type=float, default=1.0,
                        help="oscilloscope acquisition noise")
    p_tvla.add_argument("--output", default=None,
                        help="save the Welch-t accumulator to this .npz")
    p_tvla.add_argument("--grid", action="store_true",
                        help="run the built-in countermeasure grid (baseline, "
                             "shuffle, RD+jitter, masking order 1 and 2) "
                             "instead of one configuration")
    p_tvla.add_argument("--workers", type=int, default=None,
                        help="shard the capture over a process pool; at a "
                             "fixed --shard-size the merged t map and "
                             "verdict are identical for any worker count")
    p_tvla.add_argument("--shard-size", type=int, default=1024,
                        help="traces per population per shard — the unit "
                             "of parallel work and per-shard seed "
                             "derivation (only with --workers)")
    _add_fault_tolerance_options(p_tvla)
    _add_capture_mode_option(p_tvla)
    _add_countermeasure_options(p_tvla)
    p_tvla.set_defaults(func=cmd_tvla)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
