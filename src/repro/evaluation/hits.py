"""Hit-rate scoring of located CO starts against ground truth.

Section IV-B: "the percentage of hits [...] is the ratio of COs correctly
located to the total number of true COs present in the trace."  A located
start counts as a hit when it falls within a tolerance of a true start;
matching is greedy one-to-one so a single detection cannot claim two COs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HitStats", "match_hits"]


@dataclass(frozen=True)
class HitStats:
    """Outcome of matching located starts against the ground truth."""

    hits: int
    misses: int
    false_positives: int
    mean_abs_error: float  # mean |located - true| over the hits, in samples

    @property
    def total_true(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of true COs located (the paper's "Hits (%)" / 100)."""
        if self.total_true == 0:
            return 0.0
        return self.hits / self.total_true

    def __str__(self) -> str:
        return (
            f"hits {self.hits}/{self.total_true} ({self.hit_rate * 100:.1f}%), "
            f"{self.false_positives} false positives, "
            f"mean |err| {self.mean_abs_error:.1f} samples"
        )


def match_hits(
    located: np.ndarray,
    true_starts: np.ndarray,
    tolerance: int,
) -> HitStats:
    """Greedy one-to-one matching of located starts to true starts.

    True starts are processed in order; each claims the nearest unused
    located start within ``tolerance`` samples.  Remaining located starts
    are false positives.
    """
    located = np.sort(np.asarray(located, dtype=np.int64))
    true_starts = np.sort(np.asarray(true_starts, dtype=np.int64))
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    used = np.zeros(located.size, dtype=bool)
    errors = []
    hits = 0
    for true in true_starts:
        if located.size == 0:
            break
        distances = np.abs(located - true)
        distances[used] = np.iinfo(np.int64).max
        best = int(np.argmin(distances))
        if distances[best] <= tolerance:
            used[best] = True
            hits += 1
            errors.append(abs(int(located[best]) - int(true)))
    misses = int(true_starts.size) - hits
    false_positives = int((~used).sum())
    mean_err = float(np.mean(errors)) if errors else 0.0
    return HitStats(
        hits=hits,
        misses=misses,
        false_positives=false_positives,
        mean_abs_error=mean_err,
    )
