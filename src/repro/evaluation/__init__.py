"""Experiment harness: hit scoring, scenario runners, table rendering.

Everything the benchmarks (and the examples) need to turn a locator + a
simulated platform into the numbers of the paper's evaluation section.
"""

from repro.evaluation.hits import HitStats, match_hits
from repro.evaluation.reporting import format_table
from repro.evaluation.convergence import (
    format_campaign,
    guessing_entropy,
    guessing_entropy_curve,
    rank_convergence_curve,
)
from repro.evaluation.experiments import (
    SegmentationOutcome,
    default_tolerance,
    train_locator,
    run_segmentation_scenario,
    run_baseline_scenario,
    run_cpa_scenario,
)
from repro.evaluation.ge_curves import GuessingEntropyAccumulator
from repro.evaluation.tvla import (
    DEFAULT_FIXED_PLAINTEXT,
    TvlaCampaign,
    TvlaResult,
    WelchTAccumulator,
)
from repro.evaluation.parallel_tvla import (
    ParallelTvlaCampaign,
    TvlaShardResult,
    run_tvla_shard,
)

__all__ = [
    "HitStats",
    "match_hits",
    "format_table",
    "format_campaign",
    "guessing_entropy",
    "guessing_entropy_curve",
    "rank_convergence_curve",
    "SegmentationOutcome",
    "default_tolerance",
    "train_locator",
    "run_segmentation_scenario",
    "run_baseline_scenario",
    "run_cpa_scenario",
    "GuessingEntropyAccumulator",
    "DEFAULT_FIXED_PLAINTEXT",
    "TvlaCampaign",
    "TvlaResult",
    "WelchTAccumulator",
    "ParallelTvlaCampaign",
    "TvlaShardResult",
    "run_tvla_shard",
]
