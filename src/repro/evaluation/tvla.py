"""Streaming fixed-vs-random TVLA campaigns.

Test Vector Leakage Assessment (Goodwill et al.) is the standard
*non-specific* leakage test: capture one population of traces under a
**fixed** plaintext and one under **random** plaintexts (same key), and
compute Welch's t-statistic per sample between the two.  Any sample with
``|t|`` above the customary 4.5 threshold shows a statistically
significant data dependence — first-order leakage an attack could target
— without needing to know *how* to exploit it.  That makes TVLA the
right verdict statistic for a countermeasure matrix: hiding
countermeasures (random delay, shuffling, clock jitter) smear leakage
but leave it first-order detectable, while masking removes the
first-order dependence entirely and passes.

:class:`WelchTAccumulator` keeps the two populations' per-sample counts,
sums and sums of squares — additive sufficient statistics, so it is
**order- and chunking-invariant**, merges exactly across accumulators
(parallel or resumed campaigns), and persists to ``.npz`` checkpoints
like :class:`~repro.profiled.stats.ClassStats`.  Its :meth:`t` matches
:func:`repro.attacks.assessment.welch_t_by_sample` on the same trace
matrices to float precision.

:class:`TvlaCampaign` drives the interleaved capture through the
existing platform machinery: two platforms built from one
:class:`~repro.soc.platform.PlatformSpec` (one per population, with
seeds spawned from the campaign seed so the populations are independent
streams), segments cut by :meth:`capture_attack_segments`, an optional
:class:`~repro.campaign.store.TraceStore` for durability.  Stored traces
are classified on resume by comparing their plaintext to the fixed
vector, so an interrupted campaign replays, fast-forwards both platform
streams, and continues to exactly the verdict an uninterrupted run
reaches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.attacks.assessment import TVLA_THRESHOLD
from repro.campaign.store import TraceStore
from repro.soc.platform import PlatformSpec

__all__ = [
    "DEFAULT_FIXED_PLAINTEXT",
    "TvlaCampaign",
    "TvlaResult",
    "WelchTAccumulator",
]

_EPS = 1e-12

#: The fixed input of the CRI/Rambus TVLA specification for AES-128.
DEFAULT_FIXED_PLAINTEXT = bytes.fromhex("da39a3ee5e6b4b0d3255bfef95601890")

_GROUPS = ("fixed", "random")


class WelchTAccumulator:
    """Streaming two-population Welch-t sufficient statistics.

    Per trace sample the accumulator keeps each population's count, sum
    and sum of squares; the t-map is recovered exactly at any point of
    the stream.  All state is additive, so feeding the same traces in
    any order, chunking, or through merged accumulators yields the same
    statistic.
    """

    _KIND = "welch_t.v1"

    def __init__(self, threshold: float = TVLA_THRESHOLD) -> None:
        self.threshold = float(threshold)
        self._n = {group: 0 for group in _GROUPS}
        self._sums: dict[str, np.ndarray] | None = None
        self._sumsq: dict[str, np.ndarray] | None = None

    # -- accumulation --------------------------------------------------- #

    @property
    def n_fixed(self) -> int:
        return self._n["fixed"]

    @property
    def n_random(self) -> int:
        return self._n["random"]

    @property
    def n_traces(self) -> int:
        return self.n_fixed + self.n_random

    @property
    def n_samples(self) -> int | None:
        return None if self._sums is None else int(self._sums["fixed"].size)

    def update(self, group: str, traces: np.ndarray) -> int:
        """Fold one chunk of one population in; returns the group total."""
        if group not in _GROUPS:
            raise ValueError(f"group must be 'fixed' or 'random', got {group!r}")
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 2 or traces.shape[0] == 0:
            raise ValueError(
                f"expected a non-empty (n, m) chunk, got {traces.shape}"
            )
        m = traces.shape[1]
        if self._sums is None:
            self._sums = {g: np.zeros(m) for g in _GROUPS}
            self._sumsq = {g: np.zeros(m) for g in _GROUPS}
        elif m != self.n_samples:
            raise ValueError(
                f"chunk has {m} samples, statistics hold {self.n_samples}"
            )
        self._sums[group] += traces.sum(axis=0)
        self._sumsq[group] += (traces * traces).sum(axis=0)
        self._n[group] += traces.shape[0]
        return self._n[group]

    def merge(self, other: "WelchTAccumulator") -> "WelchTAccumulator":
        """Fold another accumulator fed a disjoint stream into this one."""
        if not isinstance(other, WelchTAccumulator):
            raise TypeError(
                f"cannot merge {type(other).__name__} into WelchTAccumulator"
            )
        if other.threshold != self.threshold:
            raise ValueError(
                f"threshold mismatch: {self.threshold} vs {other.threshold}"
            )
        if other.n_traces == 0:
            return self
        if self.n_traces == 0:
            self._sums = {g: other._sums[g].copy() for g in _GROUPS}
            self._sumsq = {g: other._sumsq[g].copy() for g in _GROUPS}
            self._n = dict(other._n)
            return self
        if other.n_samples != self.n_samples:
            raise ValueError(
                f"statistics hold {self.n_samples} vs {other.n_samples} samples"
            )
        for group in _GROUPS:
            self._sums[group] += other._sums[group]
            self._sumsq[group] += other._sumsq[group]
            self._n[group] += other._n[group]
        return self

    # -- derived statistics --------------------------------------------- #

    def t(self) -> np.ndarray:
        """The per-sample Welch t-map (fixed minus random), shape ``(m,)``.

        Identical (to float noise) to
        :func:`repro.attacks.assessment.welch_t_by_sample` on the two
        full trace matrices.
        """
        n_a, n_b = self.n_fixed, self.n_random
        if n_a < 2 or n_b < 2:
            raise ValueError(
                f"Welch's t needs >= 2 traces per group, have "
                f"{n_a} fixed / {n_b} random"
            )
        mean_a = self._sums["fixed"] / n_a
        mean_b = self._sums["random"] / n_b
        var_a = (self._sumsq["fixed"] - n_a * mean_a * mean_a) / (n_a - 1) / n_a
        var_b = (self._sumsq["random"] - n_b * mean_b * mean_b) / (n_b - 1) / n_b
        denom = np.sqrt(np.clip(var_a + var_b, 0.0, None))
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                denom > _EPS, (mean_a - mean_b) / np.maximum(denom, _EPS), 0.0
            )

    def max_abs_t(self) -> float:
        """The campaign's verdict statistic: ``max_m |t|``."""
        return float(np.abs(self.t()).max())

    def leakage_detected(self) -> bool:
        """Does any sample exceed the TVLA threshold?"""
        return self.max_abs_t() > self.threshold

    # -- persistence ----------------------------------------------------- #

    def save(self, path) -> None:
        """Persist the statistics as an ``.npz`` checkpoint."""
        if self._sums is None:
            raise ValueError("no traces accumulated yet")
        np.savez_compressed(
            path,
            kind=np.array(self._KIND),
            config=np.array(json.dumps({"threshold": self.threshold})),
            n=np.array([self._n[g] for g in _GROUPS]),
            sums=np.stack([self._sums[g] for g in _GROUPS]),
            sumsq=np.stack([self._sumsq[g] for g in _GROUPS]),
        )

    @classmethod
    def load(cls, path) -> "WelchTAccumulator":
        """Restore statistics saved by :meth:`save`."""
        with np.load(path) as state:
            if str(state["kind"]) != cls._KIND:
                raise ValueError(f"{path} is not a WelchTAccumulator checkpoint")
            config = json.loads(str(state["config"]))
            accumulator = cls(threshold=config["threshold"])
            accumulator._n = {
                g: int(state["n"][i]) for i, g in enumerate(_GROUPS)
            }
            accumulator._sums = {
                g: state["sums"][i].copy() for i, g in enumerate(_GROUPS)
            }
            accumulator._sumsq = {
                g: state["sumsq"][i].copy() for i, g in enumerate(_GROUPS)
            }
        return accumulator


@dataclass(frozen=True)
class TvlaResult:
    """One TVLA campaign's verdict."""

    t: np.ndarray
    max_abs_t: float
    threshold: float
    leakage_detected: bool
    n_fixed: int
    n_random: int
    countermeasure: str
    partial: bool = False           # some shards exhausted their retries
    failed_shards: tuple[int, ...] = ()

    def summary(self) -> str:
        verdict = "LEAKS" if self.leakage_detected else "passes"
        note = (
            f" [PARTIAL: shards {list(self.failed_shards)} failed]"
            if self.partial else ""
        )
        return (
            f"{self.countermeasure}: max |t| = {self.max_abs_t:.1f} "
            f"({'>' if self.leakage_detected else '<='} {self.threshold:.1f}, "
            f"{verdict}) over {self.n_fixed}+{self.n_random} traces{note}"
        )


class TvlaCampaign:
    """Interleaved fixed-vs-random capture feeding a Welch-t verdict.

    Parameters
    ----------
    spec:
        The platform recipe (cipher, countermeasures, capture mode) both
        populations are captured on.
    seed:
        Campaign seed; the two populations' platform seeds and the shared
        key are spawned from it, so a campaign is fully reproducible.  A
        :class:`numpy.random.SeedSequence` is accepted in place of the
        integer — the sharded parallel campaign seeds each shard's
        sub-campaign with the shard's spawned child.
    fixed_plaintext:
        The fixed population's input; the CRI AES-128 vector by default.
    key:
        Shared key of both populations; derived from ``seed`` when
        omitted.
    segment_length:
        Samples per stored segment; the fixed platform's empirical mean
        CO length when omitted.
    store, store_dir:
        Optional durable trace store — an open
        :class:`~repro.campaign.store.TraceStore`, or (``store_dir``) a
        directory path the campaign opens-or-creates itself with the
        right geometry and :meth:`store_meta`.  Existing content is
        classified by plaintext (fixed vector or not), replayed into the
        accumulator, and both platform streams are fast-forwarded past
        their share — resuming an interrupted campaign reaches the
        verdict of an uninterrupted one.
    batch_size:
        Traces captured per population per interleaving round.
    replay_limit:
        Per-population cap on traces replayed from the store.  A sharded
        parallel campaign resumes each shard with the shard's trace quota
        here, so a store captured under a larger budget replays only the
        shard-sized prefix instead of splicing extra traces into the
        verdict.
    """

    def __init__(
        self,
        spec: PlatformSpec,
        seed: "int | np.random.SeedSequence" = 0,
        fixed_plaintext: bytes | None = None,
        key: bytes | None = None,
        segment_length: int | None = None,
        store: TraceStore | None = None,
        store_dir=None,
        batch_size: int = 256,
        nop_header: int = 96,
        threshold: float = TVLA_THRESHOLD,
        replay_limit: int | None = None,
    ) -> None:
        if store is not None and store_dir is not None:
            raise ValueError("pass either store or store_dir, not both")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if replay_limit is not None and replay_limit < 0:
            raise ValueError("replay_limit must be >= 0")
        self.spec = spec
        if isinstance(seed, np.random.SeedSequence):
            root = seed
            # store_meta must stay JSON-serializable: describe the
            # sequence by its construction instead of the object.
            entropy = seed.entropy
            self.seed = {
                "entropy": (
                    None if entropy is None
                    else int(entropy) if np.isscalar(entropy)
                    else [int(word) for word in entropy]
                ),
                "spawn_key": [int(word) for word in seed.spawn_key],
            }
        else:
            self.seed = int(seed)
            root = np.random.SeedSequence(self.seed)
        self.batch_size = int(batch_size)
        self.nop_header = int(nop_header)
        self.replay_limit = (
            None if replay_limit is None else int(replay_limit)
        )
        fixed_seed, random_seed, key_seed = root.spawn(3)
        self._platforms = {
            "fixed": spec.build(fixed_seed),
            "random": spec.build(random_seed),
        }
        block = self._platforms["fixed"].cipher.block_size
        self.fixed_plaintext = bytes(
            fixed_plaintext if fixed_plaintext is not None
            else DEFAULT_FIXED_PLAINTEXT[:block]
        )
        if len(self.fixed_plaintext) != block:
            raise ValueError(
                f"fixed plaintext must be {block} bytes, got "
                f"{len(self.fixed_plaintext)}"
            )
        self.key = bytes(
            key if key is not None
            else np.random.default_rng(key_seed).bytes(
                self._platforms["fixed"].cipher.key_size
            )
        )
        if segment_length is None:
            # The default assessment window stops before the cipher's
            # unmasked output handling: recombining the shares trivially
            # exposes the ciphertext (fixed vs random by construction),
            # which is outside any masking claim — standard TVLA practice
            # excludes input/output handling from the verdict.
            platform = self._platforms["fixed"]
            trailer = (platform.cipher.unmasked_trailer_ops
                       * platform.oscilloscope.samples_per_op)
            segment_length = platform.mean_co_samples() - trailer
        self.segment_length = int(segment_length)
        self.accumulator = WelchTAccumulator(threshold=threshold)
        if store_dir is not None:
            store = TraceStore.open_or_create(
                store_dir,
                n_samples=self.segment_length,
                block_size=block,
                key=self.key,
                meta=self.store_meta(),
            )
        self.store = store
        self.resumed_from = 0
        self.store_quarantined = 0
        if store is not None:
            if store.n_samples != self.segment_length:
                raise ValueError(
                    f"store holds {store.n_samples}-sample segments, campaign "
                    f"captures {self.segment_length}"
                )
            if store.key is not None and store.key != self.key:
                raise ValueError(
                    "store was captured under a different key"
                )
            stored_pt = store.meta.get("fixed_plaintext")
            if stored_pt is not None and stored_pt != self.fixed_plaintext.hex():
                raise ValueError(
                    "store was captured with a different fixed plaintext"
                )
            stored_cm = store.meta.get("countermeasure")
            if stored_cm is not None and stored_cm != self.countermeasure_name:
                raise ValueError(
                    f"store was captured under countermeasure {stored_cm!r}, "
                    f"campaign runs {self.countermeasure_name!r}"
                )
            stored_mode = store.meta.get("capture_mode")
            if stored_mode is not None and stored_mode != spec.capture_mode:
                raise ValueError(
                    f"store was captured in {stored_mode!r} mode, campaign "
                    f"runs {spec.capture_mode!r}"
                )
            # Quarantine any corrupt/orphaned tail before replay: the
            # populations re-interleave deterministically, so the campaign
            # re-captures the dropped suffix instead of crashing here.
            self.store_quarantined = len(store.recover().quarantined)
            if len(store):
                self._replay(store)

    @property
    def countermeasure_name(self) -> str:
        return self._platforms["fixed"].countermeasure_name

    def _replay(self, store: TraceStore) -> None:
        """Classify and fold stored traces; fast-forward both streams.

        With a ``replay_limit`` each population folds at most that many
        stored traces (the stream is interleaved in capture order, so the
        kept traces are exactly the prefix the capped campaign captured).
        """
        fixed_row = np.frombuffer(self.fixed_plaintext, dtype=np.uint8)
        for traces, plaintexts in store.iter_chunks(self.batch_size):
            is_fixed = np.all(
                np.asarray(plaintexts) == fixed_row[None, :], axis=1
            )
            for group, mask in (("fixed", is_fixed), ("random", ~is_fixed)):
                if not mask.any():
                    continue
                chunk = np.asarray(traces)[mask]
                if self.replay_limit is not None:
                    room = self.replay_limit - self._n_group(group)
                    if room <= 0:
                        continue
                    chunk = chunk[:room]
                self.accumulator.update(group, chunk)
            if self.replay_limit is not None and all(
                self._n_group(group) >= self.replay_limit
                for group in ("fixed", "random")
            ):
                break
        self.resumed_from = self.accumulator.n_traces
        # Each platform's randomness is one seeded stream in capture
        # order; re-drawing the replayed captures is the only way to
        # continue it (same discipline as PlatformSegmentSource.skip).
        self._skip("fixed", self.accumulator.n_fixed)
        self._skip("random", self.accumulator.n_random)

    def _n_group(self, group: str) -> int:
        return (
            self.accumulator.n_fixed if group == "fixed"
            else self.accumulator.n_random
        )

    def _skip(self, group: str, count: int) -> None:
        remaining = count
        while remaining > 0:
            step = min(self.batch_size, remaining)
            self._capture(group, step)
            remaining -= step

    def _capture(self, group: str, count: int) -> tuple[np.ndarray, np.ndarray]:
        platform = self._platforms[group]
        return platform.capture_attack_segments(
            count,
            key=self.key,
            segment_length=self.segment_length,
            nop_header=self.nop_header,
            batch_size=self.batch_size,
            plaintext=self.fixed_plaintext if group == "fixed" else None,
        )

    def run(self, n_per_group: int, verbose: bool = False) -> TvlaResult:
        """Capture until both populations hold ``n_per_group`` traces.

        Populations are captured in alternating ``batch_size`` rounds
        (the interleaved acquisition the TVLA methodology prescribes to
        decorrelate environmental drift — inert in simulation but kept
        for fidelity).  Counts include resumed traces.
        """
        if n_per_group < 2:
            raise ValueError("n_per_group must be >= 2")
        self.capture(n_per_group, verbose=verbose)
        return self.result()

    def capture(self, n_per_group: int, verbose: bool = False) -> None:
        """The capture loop of :meth:`run`, without the verdict.

        Split out so a sharded parallel campaign can fill shard-sized
        accumulators (possibly below the two-trace minimum a verdict
        needs) and compute the statistic only after the merge.
        """
        if n_per_group < 1:
            raise ValueError("n_per_group must be >= 1")
        while (
            self.accumulator.n_fixed < n_per_group
            or self.accumulator.n_random < n_per_group
        ):
            for group, have in (
                ("fixed", self.accumulator.n_fixed),
                ("random", self.accumulator.n_random),
            ):
                want = min(self.batch_size, n_per_group - have)
                if want <= 0:
                    continue
                traces, plaintexts = self._capture(group, want)
                if self.store is not None:
                    self.store.append(traces, plaintexts)
                self.accumulator.update(group, traces)
            if verbose:
                print(
                    f"[tvla] {self.accumulator.n_fixed:>6d} fixed / "
                    f"{self.accumulator.n_random:>6d} random traces"
                )

    def result(self) -> TvlaResult:
        """The verdict over everything accumulated so far."""
        t = self.accumulator.t()
        max_abs_t = float(np.abs(t).max())
        return TvlaResult(
            t=t,
            max_abs_t=max_abs_t,
            threshold=self.accumulator.threshold,
            leakage_detected=max_abs_t > self.accumulator.threshold,
            n_fixed=self.accumulator.n_fixed,
            n_random=self.accumulator.n_random,
            countermeasure=self.countermeasure_name,
        )

    def store_meta(self) -> dict:
        """The metadata a durable TVLA store should be created with."""
        return {
            "purpose": "tvla",
            "fixed_plaintext": self.fixed_plaintext.hex(),
            "countermeasure": self.countermeasure_name,
            "capture_mode": self.spec.capture_mode,
            "cipher": self.spec.cipher_name,
            "seed": self.seed,
        }
