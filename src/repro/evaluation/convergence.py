"""Rank-convergence and guessing-entropy reporting for streaming campaigns.

A campaign's :class:`~repro.runtime.campaign.CheckpointRecord` sequence is
the raw material for the two standard side-channel progress metrics:

* the **rank-convergence curve** — worst per-byte rank of the true key as
  a function of the trace count (the paper's Table II asks where this
  curve first touches 1);
* the **guessing entropy** — mean ``log2`` of the per-byte ranks, i.e. the
  expected remaining brute-force work per byte in bits.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import format_table

__all__ = [
    "guessing_entropy",
    "rank_convergence_curve",
    "guessing_entropy_curve",
    "format_campaign",
]


def guessing_entropy(ranks) -> float:
    """Mean ``log2`` rank over the key bytes (0.0 = fully recovered).

    With ranks from :func:`repro.attacks.key_rank.key_byte_rank` (1 =
    best), a value of ``b`` bits means the attacker still expects ``2**b``
    guesses per key byte.
    """
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        raise ValueError("need at least one rank")
    if ranks.min() < 1:
        raise ValueError("ranks are 1-based")
    return float(np.log2(ranks).mean())


def _ranked_records(records) -> list:
    ranked = [r for r in records if r.ranks is not None]
    if not ranked:
        raise ValueError("no checkpoint carries ranks (true key unknown?)")
    return ranked


def rank_convergence_curve(records) -> tuple[np.ndarray, np.ndarray]:
    """``(trace_counts, max_ranks)`` over the checkpoints that carry ranks."""
    ranked = _ranked_records(records)
    return (
        np.asarray([r.n_traces for r in ranked], dtype=np.int64),
        np.asarray([max(r.ranks) for r in ranked], dtype=np.int64),
    )


def guessing_entropy_curve(records) -> tuple[np.ndarray, np.ndarray]:
    """``(trace_counts, guessing_entropies)`` over the ranked checkpoints."""
    ranked = _ranked_records(records)
    return (
        np.asarray([r.n_traces for r in ranked], dtype=np.int64),
        np.asarray([guessing_entropy(r.ranks) for r in ranked]),
    )


def format_campaign(result, title: str | None = None) -> str:
    """Render a campaign's checkpoint history as an aligned ASCII table.

    Shows the rank-convergence curve, guessing entropy, and how many
    recovered bytes already match the true key; degrades gracefully (key
    columns read ``-``) when the campaign ran against an unknown key.
    """
    rows = []
    for record in result.records:
        if record.ranks is not None:
            rank = str(max(record.ranks))
            rank1 = str(sum(1 for r in record.ranks if r == 1))
            entropy = f"{guessing_entropy(record.ranks):6.2f}"
            correct = f"{record.correct_bytes}/{len(record.ranks)}"
        else:
            rank = rank1 = entropy = correct = "-"
        rows.append([str(record.n_traces), rank, rank1, entropy, correct])
    if title is None:
        statistic = getattr(result, "distinguisher", "cpa")
        title = f"Campaign convergence [{statistic}] ({result.summary()})"
    return format_table(
        ["traces", "max rank", "rank-1 bytes", "GE (bits)", "key bytes"],
        rows,
        title=title,
    )
