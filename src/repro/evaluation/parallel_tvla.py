"""Process-parallel sharded TVLA campaigns.

The sharding discipline is the attack campaigns'
(:mod:`repro.runtime.parallel`): the per-group trace budget is cut into
fixed shards, shard ``i`` runs a complete miniature
:class:`~repro.evaluation.tvla.TvlaCampaign` seeded with the ``i``-th
spawned child of the campaign seed, and the parent merges the shards'
:class:`~repro.evaluation.tvla.WelchTAccumulator` statistics in shard
order.  Welch-t sufficient statistics merge *exactly*, so for a fixed
``(spec, seed, shard_size)`` the merged t-map and verdict are independent
of ``workers`` — parallelism is a pure wall-clock multiplier, and
``workers=1`` runs the identical shard plan inline as the like-for-like
serial reference the test suite pins against.

The campaign-wide inputs every shard must agree on — the shared key, the
fixed plaintext, and the resolved segment length — are derived **once**
by the parent (with the exact defaulting rules of the serial campaign)
and passed to every shard explicitly, so shards cannot drift apart on
derived configuration.

Durability mirrors :class:`~repro.runtime.parallel.ParallelCampaign`: each
shard persists to its own ``shard-NNNNNN`` trace-store directory under
``store_root``, resume replays each shard directory into its worker's
accumulator (capped at the shard's quota via ``replay_limit``, so stores
captured under a larger budget do not splice extra traces in), and a
serial single-store directory is refused rather than silently recaptured
next to.  Fault tolerance mirrors it too: shards retry with backoff
through :class:`~repro.runtime.retry.ShardExecutor` (bit-identical by
the deterministic-reseed property), corrupt shard stores are quarantined
and re-captured on resume, and exhausted retries degrade to a
``partial=True`` verdict over the completed shard prefix with the run
journalled under ``store_root``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.attacks.assessment import TVLA_THRESHOLD
from repro.evaluation.tvla import TvlaCampaign, TvlaResult, WelchTAccumulator
from repro.runtime.journal import CampaignJournal
from repro.runtime.parallel import (
    ShardSpec,
    _recover_store_dir,
    plan_shards,
)
from repro.runtime.retry import RetryPolicy, ShardExecutor, ShardFailure
from repro.soc.platform import PlatformSpec

__all__ = [
    "ParallelTvlaCampaign",
    "TvlaShardResult",
    "run_tvla_shard",
]


@dataclass
class TvlaShardResult:
    """What one TVLA shard worker ships back to the merging parent."""

    index: int
    accumulator: WelchTAccumulator
    replayed: int
    capture_seconds: float
    quarantined: int = 0        # corrupt files quarantined before resume


def _shard_store_dir(store_root, index: int) -> Path:
    return Path(store_root) / f"shard-{index:06d}"


def run_tvla_shard(
    spec: PlatformSpec,
    shard: ShardSpec,
    fixed_plaintext: bytes,
    key: bytes,
    segment_length: int,
    store_root=None,
    batch_size: int = 256,
    nop_header: int = 96,
    threshold: float = TVLA_THRESHOLD,
    fault_plan=None,
) -> TvlaShardResult:
    """Capture (or resume) one shard's fixed+random populations.

    The shard is a complete :class:`TvlaCampaign` seeded with the shard's
    spawned child sequence; the campaign-wide key, fixed plaintext, and
    segment length arrive pre-derived so every shard captures the same
    configuration.  With a ``store_root`` the shard persists under its own
    ``shard-<index>`` directory — integrity-checked and quarantined as
    needed before resume — and replays at most ``shard.count`` traces per
    population.  ``fault_plan`` is the chaos-test hook.
    """
    store_dir = None
    quarantined = 0
    if store_root is not None:
        store_dir = _shard_store_dir(store_root, shard.index)
        # Recover before the campaign opens the store: an unparseable
        # manifest quarantines the whole directory, which open_or_create
        # could not survive.
        quarantined = _recover_store_dir(store_dir)
    campaign = TvlaCampaign(
        spec,
        seed=shard.seed_sequence,
        fixed_plaintext=fixed_plaintext,
        key=key,
        segment_length=segment_length,
        store_dir=store_dir,
        batch_size=batch_size,
        nop_header=nop_header,
        threshold=threshold,
        replay_limit=shard.count,
    )
    if fault_plan is not None:
        fault_plan.maybe_fire(
            shard.index, done=campaign.resumed_from, store=campaign.store
        )
    begin = time.perf_counter()
    campaign.capture(shard.count)
    return TvlaShardResult(
        index=shard.index,
        accumulator=campaign.accumulator,
        replayed=campaign.resumed_from,
        capture_seconds=time.perf_counter() - begin,
        quarantined=quarantined + campaign.store_quarantined,
    )


class ParallelTvlaCampaign:
    """Fan a TVLA campaign's capture over a process pool and merge.

    Parameters mirror :class:`~repro.evaluation.tvla.TvlaCampaign` where
    they overlap; the additions are ``workers`` (pool width; 1 runs the
    shards inline — the serial reference of the same shard plan),
    ``shard_size`` (traces **per population** per shard — the unit of
    parallel work and seed derivation), and ``store_root`` (a directory of
    per-shard trace stores in place of the serial campaign's single
    store).

    For a fixed ``(spec, seed, shard_size)`` the captured populations,
    the merged t-map, and the verdict are independent of ``workers``.
    Note the sharded trace streams differ from a plain unsharded
    ``TvlaCampaign`` of the same seed (each shard captures on freshly
    seeded platforms), exactly as the sharded attack campaigns differ
    from their unsharded serial equivalents.
    """

    def __init__(
        self,
        spec: PlatformSpec,
        seed: int = 0,
        workers: int = 1,
        shard_size: int = 1024,
        fixed_plaintext: bytes | None = None,
        key: bytes | None = None,
        segment_length: int | None = None,
        store_root=None,
        batch_size: int = 256,
        nop_header: int = 96,
        threshold: float = TVLA_THRESHOLD,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        shard_timeout: float | None = None,
        fault_plan=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.spec = spec
        self.seed = int(seed)
        self.workers = int(workers)
        self.shard_size = int(shard_size)
        self.store_root = store_root
        self.batch_size = int(batch_size)
        self.nop_header = int(nop_header)
        self.threshold = float(threshold)
        self.retry_policy = RetryPolicy(
            max_retries=max_retries,
            backoff=retry_backoff,
            timeout=shard_timeout,
        )
        self.fault_plan = fault_plan
        # Derive the campaign-wide configuration exactly as the serial
        # campaign would (key spawned from the campaign seed, CRI fixed
        # vector cut to the block, segment length from the platform's
        # empirical CO length) — the probe campaign captures nothing.
        probe = TvlaCampaign(
            spec,
            seed=self.seed,
            fixed_plaintext=fixed_plaintext,
            key=key,
            segment_length=segment_length,
            batch_size=self.batch_size,
            nop_header=self.nop_header,
            threshold=self.threshold,
        )
        self.fixed_plaintext = probe.fixed_plaintext
        self.key = probe.key
        self.segment_length = probe.segment_length
        self.countermeasure_name = probe.countermeasure_name
        self.accumulator = WelchTAccumulator(threshold=self.threshold)
        self.resumed_from = 0
        self.partial = False
        self.failed_shards: tuple[int, ...] = ()

    def run(self, n_per_group: int, verbose: bool = False) -> TvlaResult:
        """Capture until both merged populations hold ``n_per_group``.

        Failed shards retry through the campaign's
        :class:`~repro.runtime.retry.RetryPolicy`; a shard that exhausts
        its retries degrades the run to a ``partial=True`` verdict over
        the completed shard prefix (the
        :class:`~repro.runtime.retry.ShardFailure` propagates instead
        when the prefix holds fewer than two traces per population — no
        t-statistic exists to report).
        """
        if n_per_group < 2:
            raise ValueError("n_per_group must be >= 2")
        journal = None
        if self.store_root is not None:
            if (Path(self.store_root) / "manifest.json").exists():
                raise ValueError(
                    f"{self.store_root} holds a single serial TraceStore; "
                    f"resume it without workers, or point the parallel "
                    f"campaign at a fresh directory"
                )
            Path(self.store_root).mkdir(parents=True, exist_ok=True)
            journal = CampaignJournal.open_or_create(
                self.store_root, "parallel_tvla",
                meta={
                    "seed": self.seed,
                    "shard_size": self.shard_size,
                    "countermeasure": self.countermeasure_name,
                },
            )
        shards = plan_shards(self.seed, n_per_group, self.shard_size)
        if journal is not None:
            journal.begin(len(shards))

        def on_event(index: int, state: str, retries: int) -> None:
            if journal is not None:
                journal.update_shard(index, state)
            if verbose and state in ("retrying", "failed"):
                print(
                    f"[tvla x{self.workers}] shard {index} {state} "
                    f"(retries {retries})"
                )

        executor = ShardExecutor(
            workers=self.workers, policy=self.retry_policy, on_event=on_event
        )
        accumulator = WelchTAccumulator(threshold=self.threshold)
        resumed = 0
        capture_seconds = 0.0
        failures: list[ShardFailure] = []
        try:
            for shard in shards:
                executor.submit(
                    shard.index, run_tvla_shard, self.spec, shard,
                    self.fixed_plaintext, self.key, self.segment_length,
                    self.store_root, self.batch_size, self.nop_header,
                    self.threshold, self.fault_plan,
                )
            for shard in shards:
                try:
                    result = executor.result(shard.index)
                except ShardFailure as failure:
                    failures.append(failure)
                    break
                accumulator.merge(result.accumulator)
                resumed += result.replayed
                capture_seconds += result.capture_seconds
                if journal is not None and result.quarantined:
                    journal.update_shard(shard.index, "done", quarantined=True)
                if verbose:
                    print(
                        f"[tvla x{self.workers}] shard {result.index}: "
                        f"{result.accumulator.n_fixed} fixed / "
                        f"{result.accumulator.n_random} random"
                    )
        except BaseException:
            # Interrupt / unexpected error: terminate workers outright so
            # no zombie keeps capturing after the parent unwinds.
            if journal is not None:
                journal.set_phase("interrupted")
            executor.close(force=True)
            raise
        executor.close(force=bool(failures))
        partial = bool(failures)
        if partial and (accumulator.n_fixed < 2 or accumulator.n_random < 2):
            if journal is not None:
                journal.set_phase("failed")
            raise failures[0]
        self.accumulator = accumulator
        self.resumed_from = resumed
        self.capture_seconds = capture_seconds
        self.partial = partial
        self.failed_shards = tuple(f.index for f in failures)
        if journal is not None:
            journal.set_phase("partial" if partial else "complete")
        return self.result()

    def result(self) -> TvlaResult:
        """The verdict over everything merged so far."""
        t = self.accumulator.t()
        max_abs_t = float(np.abs(t).max())
        return TvlaResult(
            t=t,
            max_abs_t=max_abs_t,
            threshold=self.accumulator.threshold,
            leakage_detected=max_abs_t > self.accumulator.threshold,
            n_fixed=self.accumulator.n_fixed,
            n_random=self.accumulator.n_random,
            countermeasure=self.countermeasure_name,
            partial=self.partial,
            failed_shards=self.failed_shards,
        )
