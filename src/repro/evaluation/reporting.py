"""Plain-text table rendering for benchmark printouts."""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render an aligned ASCII table (monospace, benchmark-log friendly)."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("all rows must have the same arity as the header")
    columns = [[str(h)] + [str(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
