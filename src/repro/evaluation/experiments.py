"""Scenario runners shared by the benchmarks and the examples.

Each runner encapsulates one experimental condition of Section IV:
train a locator (or a baseline) against a clone platform, capture an
attack session on the target platform, locate, score hits, and optionally
mount the CPA.  Seeds are explicit everywhere so every benchmark row is
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks import traces_to_rank1
from repro.config import PipelineConfig, default_config
from repro.core.locator import CryptoLocator
from repro.evaluation.hits import HitStats, match_hits
from repro.soc.platform import SessionTrace, SimulatedPlatform

__all__ = [
    "SegmentationOutcome",
    "train_locator",
    "run_segmentation_scenario",
    "run_baseline_scenario",
    "run_cpa_scenario",
    "default_tolerance",
]


def default_tolerance(config: PipelineConfig) -> int:
    """Hit tolerance used across experiments.

    The paper's segmentation resolves CO starts to one stride (s = 1000
    samples on a 220 k-sample AES, i.e. ~0.5 % of the CO); a located start
    is "correct" when it identifies the CO well enough for alignment plus
    the CPA's time aggregation to absorb the residual offset.  Half an
    inference window (and never less than three strides) matches that
    regime at this reproduction's scale.
    """
    return max(3 * config.stride, config.n_inf // 2)


@dataclass
class SegmentationOutcome:
    """Everything a segmentation scenario produced."""

    stats: HitStats
    session: SessionTrace
    located: np.ndarray
    config: PipelineConfig


def train_locator(
    cipher: str,
    max_delay: int,
    seed: int = 0,
    dataset_scale: float = 1 / 64,
    config: PipelineConfig | None = None,
    noise_ops: int = 60_000,
    verbose: bool = False,
    batch_size: int | None = None,
) -> tuple[CryptoLocator, SimulatedPlatform]:
    """Profile a clone platform and train a locator for one condition.

    Returns the fitted locator and the clone platform (whose seed differs
    from any attack platform derived later).  ``batch_size`` bounds the
    profiling-capture batches (results are chunking-invariant).
    """
    config = config if config is not None else default_config(cipher, dataset_scale)
    clone = SimulatedPlatform(cipher, max_delay=max_delay, seed=seed)
    locator = CryptoLocator(config, seed=seed + 1)
    locator.fit_from_platform(clone, noise_ops=noise_ops, verbose=verbose,
                              batch_size=batch_size)
    return locator, clone


def run_segmentation_scenario(
    locator: CryptoLocator,
    cipher: str,
    max_delay: int,
    noise_interleaved: bool,
    n_cos: int = 64,
    seed: int = 1000,
    tolerance: int | None = None,
) -> SegmentationOutcome:
    """Capture an attack session and score the locator's hits."""
    target = SimulatedPlatform(cipher, max_delay=max_delay, seed=seed)
    session = target.capture_session_trace(n_cos, noise_interleaved=noise_interleaved)
    located = locator.locate(session.trace)
    tol = tolerance if tolerance is not None else default_tolerance(locator.config)
    stats = match_hits(located, session.true_starts, tol)
    return SegmentationOutcome(
        stats=stats, session=session, located=located, config=locator.config
    )


def run_baseline_scenario(
    baseline,
    cipher: str,
    max_delay: int,
    noise_interleaved: bool,
    tolerance: int,
    n_cos: int = 64,
    seed: int = 1000,
) -> tuple[HitStats, SessionTrace, np.ndarray]:
    """Score a fitted baseline locator on an attack session.

    ``baseline`` is any object with ``locate(trace) -> starts`` (the
    matched-filter or semi-automatic locator, already fitted on profiling
    captures).
    """
    target = SimulatedPlatform(cipher, max_delay=max_delay, seed=seed)
    session = target.capture_session_trace(n_cos, noise_interleaved=noise_interleaved)
    located = baseline.locate(session.trace)
    stats = match_hits(located, session.true_starts, tolerance)
    return stats, session, located


def run_cpa_scenario(
    locator: CryptoLocator,
    session: SessionTrace,
    located: np.ndarray,
    aggregate: int = 64,
    segment_length: int | None = None,
    checkpoints: list[int] | None = None,
    distinguisher=None,
) -> int | None:
    """Mount the CPA of Section IV-C on the located-and-aligned COs.

    Associates each located start with the plaintext of the nearest true
    CO (the attacker knows the I/O order, so in practice the association
    is positional; using the nearest true start keeps the bookkeeping
    honest when there are false positives).  Returns the traces-to-rank-1
    count, or ``None`` on failure — Table II's CPA column.

    ``distinguisher`` swaps the default batch HW CPA for any registered
    distinguisher (see :func:`repro.attacks.traces_to_rank1`).
    """
    if located.size < 8:
        return None
    segment_length = (
        segment_length if segment_length is not None else 2 * locator.config.n_inf
    )
    segments, kept = locator.align(session.trace, starts=located, length=segment_length)
    if segments.shape[0] < 8:
        return None
    # Associate each kept detection with the nearest true CO's plaintext.
    true_starts = session.true_starts
    located_kept = np.asarray(located)[kept]
    nearest = np.abs(located_kept[:, None] - true_starts[None, :]).argmin(axis=1)
    plaintexts = np.frombuffer(
        b"".join(session.plaintexts[i] for i in nearest), dtype=np.uint8
    ).reshape(-1, 16)
    return traces_to_rank1(
        segments,
        plaintexts,
        session.key,
        checkpoints=checkpoints,
        aggregate=aggregate,
        distinguisher=distinguisher,
    )
