"""Averaged guessing-entropy curves over independent campaign repetitions.

A single campaign's guessing-entropy curve
(:func:`repro.evaluation.convergence.guessing_entropy_curve`) is one
noisy realisation: where it crosses zero depends on the particular key,
capture noise, and countermeasure randomness drawn.  The standard
evaluation metric averages the curve over **independent repetitions**
(fresh seeds, same configuration), which is what
:class:`GuessingEntropyAccumulator` computes — per checkpoint trace
count it keeps the count, sum, and sum of squares of the per-repetition
guessing entropies, so mean curves (and their spread) fall out at any
point, repetitions merge exactly across accumulators (parallel sweeps),
and the state persists to ``.npz`` like the other sufficient-statistic
accumulators in this repository.

Repetitions must share a checkpoint ladder for their bins to align;
:meth:`ExperimentEngine.run_ge_curve
<repro.runtime.engine.ExperimentEngine.run_ge_curve>` arranges that by
passing every repetition the same explicit ladder.
"""

from __future__ import annotations

import json

import numpy as np

from repro.evaluation.convergence import guessing_entropy

__all__ = ["GuessingEntropyAccumulator"]


class GuessingEntropyAccumulator:
    """Per-checkpoint moments of guessing entropy over repetitions."""

    _KIND = "ge_curve.v1"

    def __init__(self) -> None:
        self.n_repetitions = 0
        # checkpoint trace count -> [count, sum, sumsq] of per-rep GE.
        self._bins: dict[int, list[float]] = {}

    # -- accumulation --------------------------------------------------- #

    def update(self, records) -> int:
        """Fold one repetition's checkpoint records in; returns the total.

        ``records`` is a campaign's :class:`CheckpointRecord
        <repro.runtime.campaign.CheckpointRecord>` list (or any objects
        with ``n_traces`` and ``ranks``); checkpoints without ranks
        (unknown true key) are rejected — an averaged curve needs the
        ground truth.
        """
        records = list(records)
        if not records:
            raise ValueError("a repetition needs at least one checkpoint")
        entries = []
        for record in records:
            if record.ranks is None:
                raise ValueError(
                    "checkpoint carries no ranks (true key unknown?); "
                    "guessing-entropy curves need ground truth"
                )
            entries.append((int(record.n_traces), guessing_entropy(record.ranks)))
        for n_traces, value in entries:
            moments = self._bins.setdefault(n_traces, [0.0, 0.0, 0.0])
            moments[0] += 1.0
            moments[1] += value
            moments[2] += value * value
        self.n_repetitions += 1
        return self.n_repetitions

    def merge(self, other: "GuessingEntropyAccumulator") -> "GuessingEntropyAccumulator":
        """Fold another accumulator's repetitions into this one."""
        if not isinstance(other, GuessingEntropyAccumulator):
            raise TypeError(
                f"cannot merge {type(other).__name__} into "
                f"GuessingEntropyAccumulator"
            )
        for n_traces, moments in other._bins.items():
            mine = self._bins.setdefault(n_traces, [0.0, 0.0, 0.0])
            for i in range(3):
                mine[i] += moments[i]
        self.n_repetitions += other.n_repetitions
        return self

    # -- derived statistics --------------------------------------------- #

    def curve(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(trace_counts, mean_ge, std_ge, repetition_counts)``.

        One entry per checkpoint bin, sorted by trace count.  ``std_ge``
        is the population standard deviation of the per-repetition
        values in the bin (0 for single-repetition bins).
        """
        if not self._bins:
            raise ValueError("no repetitions accumulated yet")
        counts = np.array(sorted(self._bins), dtype=np.int64)
        reps = np.array([self._bins[n][0] for n in counts])
        sums = np.array([self._bins[n][1] for n in counts])
        sumsq = np.array([self._bins[n][2] for n in counts])
        means = sums / reps
        variances = np.clip(sumsq / reps - means * means, 0.0, None)
        return counts, means, np.sqrt(variances), reps.astype(np.int64)

    def traces_to_entropy(self, bits: float = 0.0) -> int | None:
        """First checkpoint whose *mean* GE is at or below ``bits``.

        ``None`` when no bin reaches it — the budget was too small.
        """
        counts, means, _, _ = self.curve()
        below = np.flatnonzero(means <= bits + 1e-9)
        return None if below.size == 0 else int(counts[below[0]])

    # -- persistence ----------------------------------------------------- #

    def save(self, path) -> None:
        """Persist the accumulator as an ``.npz`` checkpoint."""
        if not self._bins:
            raise ValueError("no repetitions accumulated yet")
        counts = np.array(sorted(self._bins), dtype=np.int64)
        np.savez_compressed(
            path,
            kind=np.array(self._KIND),
            config=np.array(json.dumps(
                {"n_repetitions": self.n_repetitions}
            )),
            checkpoints=counts,
            moments=np.array([self._bins[n] for n in counts]),
        )

    @classmethod
    def load(cls, path) -> "GuessingEntropyAccumulator":
        """Restore an accumulator saved by :meth:`save`."""
        with np.load(path) as state:
            if str(state["kind"]) != cls._KIND:
                raise ValueError(
                    f"{path} is not a GuessingEntropyAccumulator checkpoint"
                )
            config = json.loads(str(state["config"]))
            accumulator = cls()
            accumulator.n_repetitions = int(config["n_repetitions"])
            for n_traces, moments in zip(
                state["checkpoints"], state["moments"]
            ):
                accumulator._bins[int(n_traces)] = [float(m) for m in moments]
        return accumulator
