#!/usr/bin/env python
"""Profiled attack subsystem benchmark: profiling, templates, NN models.

On a deterministic synthetic leaky stream this measures the three costs
the two-phase profiled workflow pays:

* **profiling throughput** — traces/s through the streaming
  class-conditional statistics (the clone-device capture loop's
  bookkeeping cost);
* **attack throughput + evaluation latency** — traces/s through chunked
  log-likelihood accumulation and the per-checkpoint cost of turning the
  sufficient statistic into per-byte guess scores, for both the Gaussian
  template and the NN-profiled distinguisher;
* **traces-to-rank-1** — the attack-phase budget each profiled model
  needs, walked incrementally up a geometric checkpoint ladder.

Besides the printed table the benchmark writes ``BENCH_profiled.json``
(override with ``--output``) so CI can track the perf trajectory
machine-readably.

Run directly (CI-sized with ``--quick``):

    PYTHONPATH=src python benchmarks/bench_profiled.py --quick
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.attacks.key_rank import geometric_checkpoints
from repro.ciphers.aes import SBOX
from repro.evaluation import format_table
from repro.profiled import (
    ClassStats,
    NnProfiledDistinguisher,
    TemplateDistinguisher,
    fit_nn_profile,
    fit_template_profile,
    select_pois,
)

_SBOX = np.asarray(SBOX, dtype=np.uint8)
_HW = np.asarray([bin(v).count("1") for v in range(256)], dtype=np.float64)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")[:8]


def leaky_stream(rng, n, samples, noise):
    """Traces leaking HW(SBOX[pt ^ k]) per byte at known positions."""
    pts = rng.integers(0, 256, (n, len(KEY)), dtype=np.uint8)
    traces = rng.normal(0.0, noise, (n, samples))
    for b in range(len(KEY)):
        traces[:, (3 * b) % samples] += _HW[_SBOX[pts[:, b] ^ KEY[b]]]
    return traces, pts


def bench_profiling(traces, pts, chunk, n_pois):
    """Streaming statistics throughput + SNR-ranked POI selection."""
    stats = ClassStats(KEY, model="hw")
    begin = time.perf_counter()
    for lo in range(0, len(traces), chunk):
        stats.update(traces[lo:lo + chunk], pts[lo:lo + chunk])
    seconds = time.perf_counter() - begin
    pois = select_pois(stats.snr(), n_pois)
    return {
        "profiling_traces_per_s": len(traces) / seconds,
        "profiling_seconds": seconds,
        "n_traces": len(traces),
    }, pois


def bench_attack(build, traces, pts, chunk):
    """Chunked accumulation throughput, eval latency, traces-to-rank-1."""
    budget = len(traces)

    # Warm the accumulate/score paths (allocator + caches) so the first
    # configuration is not penalised relative to the others.
    warm = build()
    warm.update(traces[:chunk], pts[:chunk])
    warm.guess_scores()

    acc = build()
    begin = time.perf_counter()
    for lo in range(0, budget, chunk):
        acc.update(traces[lo:lo + chunk], pts[lo:lo + chunk])
    update_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    acc.guess_scores()
    eval_seconds = time.perf_counter() - begin

    walker = build()
    done = 0
    rank1 = None
    for point in geometric_checkpoints(budget, first=25):
        walker.update(traces[done:point], pts[done:point])
        done = point
        if all(rank == 1 for rank in walker.key_ranks(KEY)):
            rank1 = point
            break

    return {
        "update_traces_per_s": budget / update_seconds,
        "update_seconds": update_seconds,
        "eval_seconds": eval_seconds,
        "traces_to_rank1": rank1,
        "budget": budget,
        "recovered": walker.recovered_key() == KEY,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized budgets")
    parser.add_argument("--samples", type=int, default=40,
                        help="samples per synthetic trace")
    parser.add_argument("--chunk", type=int, default=256,
                        help="traces per online update chunk")
    parser.add_argument("--pois", type=int, default=2,
                        help="points of interest per byte")
    parser.add_argument("--epochs", type=int, default=None,
                        help="nn training epochs (default 8, 4 with --quick)")
    parser.add_argument("--noise", type=float, default=1.0)
    parser.add_argument("--output", default="fresh_BENCH_profiled.json",
                        help="JSON trajectory path; the default is "
                             "gitignored — pass BENCH_profiled.json to "
                             "refresh the committed baseline")
    args = parser.parse_args()

    scale = 2 if args.quick else 1
    n_profiling = 8000 // scale
    n_attack = 2000 // scale
    epochs = args.epochs if args.epochs is not None else (8 // scale)

    rng = np.random.default_rng(0xBE7C)
    profiling = leaky_stream(rng, n_profiling, args.samples, args.noise)
    attack = leaky_stream(
        np.random.default_rng(0x5EED), n_attack, args.samples, args.noise
    )

    profiling_metrics, pois = bench_profiling(
        *profiling, args.chunk, args.pois
    )
    print(f"[bench] profiling: "
          f"{profiling_metrics['profiling_traces_per_s']:.0f} traces/s "
          f"over {n_profiling} traces, {args.pois} POIs/byte")

    begin = time.perf_counter()
    template = fit_template_profile(profiling, KEY, pois=pois, pooled=False)
    template_fit = time.perf_counter() - begin
    begin = time.perf_counter()
    nn = fit_nn_profile(profiling, KEY, pois=pois, epochs=epochs)
    nn_fit = time.perf_counter() - begin

    results = {}
    rows = []
    for name, cls, profile, fit_seconds in (
        ("template", TemplateDistinguisher, template, template_fit),
        ("nnp", NnProfiledDistinguisher, nn, nn_fit),
    ):
        measured = bench_attack(
            lambda cls=cls, profile=profile: cls(profile), *attack, args.chunk
        )
        measured["fit_seconds"] = fit_seconds
        results[name] = measured
        rows.append([
            name,
            f"{fit_seconds:.2f}",
            f"{measured['update_traces_per_s']:.0f}",
            f"{measured['eval_seconds'] * 1e3:.1f}",
            str(measured["traces_to_rank1"] or "x"),
            str(measured["budget"]),
        ])
        print(f"[bench] {name}: fit {fit_seconds:.2f}s, "
              f"{measured['update_traces_per_s']:.0f} traces/s, "
              f"rank 1 at {measured['traces_to_rank1']}")

    print()
    print(format_table(
        ["model", "fit s", "update traces/s", "eval ms", "rank 1 at",
         "budget"],
        rows,
        title=f"Profiled attack subsystem ({len(KEY)}-byte key, "
              f"{n_profiling} profiling traces, {args.pois} POIs/byte)",
    ))

    payload = {
        "benchmark": "profiled",
        "quick": bool(args.quick),
        "key_bytes": len(KEY),
        "samples": args.samples,
        "chunk": args.chunk,
        "pois_per_byte": args.pois,
        "epochs": epochs,
        "profiling": profiling_metrics,
        "distinguishers": results,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nwrote {args.output}")

    failed = [
        name for name, measured in results.items()
        if measured["traces_to_rank1"] is None
    ]
    if failed:
        print(f"profiled models missing rank 1 on their target workload: "
              f"{', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
