#!/usr/bin/env python
"""Streaming attack throughput: rank evaluation, store, capture modes.

The Table-II metric ("N. COs to reach rank 1") needs key ranks at a ladder
of trace-count checkpoints.  The batch baseline
(:func:`repro.attacks.key_rank.traces_to_rank1`) re-runs the full CPA at
every checkpoint, touching each trace O(checkpoints) times; the streaming
:class:`~repro.campaign.online.OnlineCpa` touches each trace once and
recovers the correlation matrix from sufficient statistics at every
checkpoint.  With the default geometric ladder (growth 1.5) the batch
baseline processes ~3x the trace volume, so the streaming pass should win
by at least that factor — this benchmark measures it, verifies both paths
agree on every checkpoint's ranks, and also reports TraceStore append /
replay throughput.

It additionally measures the **capture modes** end to end: one seeded
RD-0 platform campaign run twice — ``exact`` (bit-identical per-trace
randomness) vs ``fast`` (bulk randomness + windowed segment synthesis) —
verifying both recover the true key and reporting the wall-clock ratio.
A second capture-mode case repeats the comparison under **random delays**
(RD-2, reduced two-byte key): since the windowed fast path maps the
attacked window through each trace's delay plan, it synthesises only the
shifted window instead of the whole countermeasure-stretched trace, and
the benchmark verifies both modes still recover the identical (true)
reduced key.

Besides the printed tables the benchmark writes
``BENCH_streaming_attack.json`` (override with ``--output``) so CI can
track the perf trajectory machine-readably against the committed
baseline.

Run directly (CI runs ``--quick``):

    PYTHONPATH=src python benchmarks/bench_streaming_attack.py --quick
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time

import numpy as np

from repro.attacks import full_key_ranks, geometric_checkpoints
from repro.attacks.leakage_models import hw_byte
from repro.campaign import OnlineCpa, TraceStore
from repro.ciphers.aes import SBOX
from repro.evaluation import format_table

_SBOX = np.asarray(SBOX, dtype=np.uint8)


def synthetic_traces(
    rng: np.random.Generator, n: int, samples: int, key: bytes, noise: float
) -> tuple[np.ndarray, np.ndarray]:
    """HW(SBOX[pt ^ k]) leakage at one sample position per key byte."""
    pts = rng.integers(0, 256, (n, 16), dtype=np.uint8)
    traces = rng.normal(0.0, noise, (n, samples))
    for b in range(16):
        traces[:, (2 * b) % samples] += hw_byte(_SBOX[pts[:, b] ^ key[b]])
    return traces, pts


def bench_capture_modes(
    budget: int, segment_length: int = 600
) -> tuple[list[list[str]], dict]:
    """One seeded RD-0 campaign in each capture mode: wall clock + keys.

    The campaign captures the attacked window (the prologue through the
    first-round S-box, where the windowed fast path pays off exactly like
    a triggered scope) and ranks once at the full budget, so the measured
    wall clock isolates the capture + accumulate pipeline the modes
    differ in rather than the mode-independent checkpoint evaluations
    (reported separately by ``bench_distinguishers``).
    """
    from repro.runtime.campaign import AttackCampaign, PlatformSegmentSource
    from repro.soc.platform import SimulatedPlatform

    key = bytes(range(16))
    measured = {}
    for mode in ("exact", "fast"):
        platform = SimulatedPlatform(
            "aes", max_delay=0, seed=42, capture_mode=mode
        )
        source = PlatformSegmentSource(
            platform, key=key, segment_length=segment_length
        )
        campaign = AttackCampaign(
            source, aggregate=8, batch_size=256, checkpoints=[budget],
        )
        begin = time.perf_counter()
        result = campaign.run(budget)
        seconds = time.perf_counter() - begin
        if result.recovered_key != key:
            raise AssertionError(f"{mode} campaign failed to recover the key")
        measured[mode] = {
            "seconds": seconds,
            "traces_per_s": budget / seconds,
            "capture_seconds": result.capture_seconds,
            "attack_seconds": result.attack_seconds,
            "recovered": True,
        }
    speedup = measured["exact"]["seconds"] / measured["fast"]["seconds"]
    measured["speedup"] = speedup
    measured["traces"] = budget
    rows = [
        [f"campaign {mode} mode", "-", f"{budget}",
         f"{measured[mode]['seconds']:7.3f}",
         f"{measured[mode]['traces_per_s']:6.0f}/s"]
        for mode in ("exact", "fast")
    ]
    return rows, measured


def bench_capture_modes_rd2(
    budget: int,
    max_delay: int = 2,
    attack_bytes: int = 2,
    segment_length: int = 1200,
) -> tuple[list[list[str]], dict]:
    """The capture-mode comparison under random delays (reduced key).

    RD>0 is where the windowed fast path earns its keep: the exact mode
    must synthesise every countermeasure-stretched trace in full, while
    the fast mode maps the attacked window through each trace's delay
    plan and synthesises only the shifted window.  Random delays smear
    the S-box leakage across neighbouring samples, so convergence needs a
    heavier aggregate, a window long enough to keep the delayed first
    round in view, and more traces than the RD-0 case; the reduced
    two-byte key bounds the rank-evaluation cost so wall clock stays
    capture-dominated.  Both modes must recover the identical true
    reduced key.
    """
    from repro.runtime.campaign import AttackCampaign, PlatformSegmentSource
    from repro.runtime.parallel import ReducedKeySource
    from repro.soc.platform import SimulatedPlatform

    key = bytes(range(16))
    measured = {}
    for mode in ("exact", "fast"):
        platform = SimulatedPlatform(
            "aes", max_delay=max_delay, seed=42, capture_mode=mode
        )
        source = ReducedKeySource(
            PlatformSegmentSource(
                platform, key=key, segment_length=segment_length
            ),
            attack_bytes,
        )
        campaign = AttackCampaign(
            source, aggregate=64, batch_size=256, checkpoints=[budget],
        )
        begin = time.perf_counter()
        result = campaign.run(budget)
        seconds = time.perf_counter() - begin
        if result.recovered_key != key[:attack_bytes]:
            raise AssertionError(
                f"RD-{max_delay} {mode} campaign recovered "
                f"{result.recovered_key.hex()} instead of the true reduced "
                f"key {key[:attack_bytes].hex()}"
            )
        measured[mode] = {
            "seconds": seconds,
            "traces_per_s": budget / seconds,
            "capture_seconds": result.capture_seconds,
            "attack_seconds": result.attack_seconds,
            "recovered": True,
        }
    measured["speedup"] = (
        measured["exact"]["seconds"] / measured["fast"]["seconds"]
    )
    measured["traces"] = budget
    measured["max_delay"] = max_delay
    measured["attack_bytes"] = attack_bytes
    measured["segment_length"] = segment_length
    rows = [
        [f"RD-{max_delay} campaign {mode} mode", "-", f"{budget}",
         f"{measured[mode]['seconds']:7.3f}",
         f"{measured[mode]['traces_per_s']:6.0f}/s"]
        for mode in ("exact", "fast")
    ]
    return rows, measured


def bench_fault_tolerance(
    budget: int, shard_size: int | None = None
) -> tuple[list[list[str]], dict]:
    """What the fault-tolerance layer costs a fault-free run.

    The fault-tolerant :class:`~repro.runtime.parallel.ParallelCampaign`
    at ``workers=1`` (inline ShardExecutor dispatch, retry accounting, no
    journal) races a bare loop over the identical shard plan — direct
    ``run_shard`` calls merged and rank-evaluated at the same
    shard-aligned ladder.  Both paths produce bit-identical checkpoint
    ranks (verified), so the ratio isolates the retry layer's overhead;
    the campaign gate is that it stays within a few percent.
    """
    from repro.runtime import ParallelCampaign, PlatformCampaignSpec
    from repro.runtime.campaign import evaluate_checkpoint
    from repro.runtime.parallel import plan_shards, run_shard
    from repro.soc.platform import PlatformSpec, SimulatedPlatform

    if shard_size is None:
        shard_size = max(256, budget // 8)
    probe = SimulatedPlatform("aes", max_delay=0, seed=7)
    spec = PlatformCampaignSpec(
        platform=PlatformSpec(cipher_name="aes", max_delay=0),
        key=probe.random_key(),
        segment_length=probe.mean_co_samples(),
        batch_size=256,
        attack_bytes=2,
    )
    campaign = ParallelCampaign(
        spec, seed=7, workers=1, shard_size=shard_size,
        aggregate=8, rank1_patience=1000, batch_size=256,
    )
    ladder = campaign.checkpoints(budget)
    shards = plan_shards(7, budget, shard_size)
    dist_spec = campaign.distinguisher_spec

    # Warm the synthesis caches once so neither timed path pays them.
    run_shard(spec, shards[0], None, 8, 256, dist_spec)

    begin = time.perf_counter()
    accumulator = dist_spec.build()
    bare_records = []
    merged = 0
    for target in ladder:
        needed = -(-target // shard_size)            # ceil
        for shard in shards[merged:needed]:
            result = run_shard(spec, shard, None, 8, 256, dist_spec)
            accumulator.merge(result.accumulator)
        merged = max(merged, needed)
        bare_records.append(
            evaluate_checkpoint(
                accumulator, spec.true_key, accumulator.n_traces
            )
        )
    bare_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    layered = campaign.run(budget)
    layered_seconds = time.perf_counter() - begin

    for mine, theirs in zip(layered.records, bare_records):
        if mine.n_traces != theirs.n_traces or mine.ranks != theirs.ranks:
            raise AssertionError(
                f"fault-tolerant dispatch diverged at {mine.n_traces} "
                f"traces: {mine.ranks} != {theirs.ranks}"
            )
    if layered.retries or layered.partial:
        raise AssertionError("fault-free run reported retries or partial")

    overhead = layered_seconds / max(bare_seconds, 1e-9)
    rows = [
        ["bare shard loop", f"{len(ladder)}", f"{budget}",
         f"{bare_seconds:7.3f}", f"{budget / bare_seconds:6.0f}/s"],
        ["fault-tolerant campaign", f"{len(ladder)}", f"{budget}",
         f"{layered_seconds:7.3f}", f"{budget / layered_seconds:6.0f}/s"],
    ]
    stats = {
        "bare_seconds": bare_seconds,
        "layered_seconds": layered_seconds,
        "overhead_ratio": overhead,
        "bare_traces_per_s": budget / max(bare_seconds, 1e-9),
        "layered_traces_per_s": budget / max(layered_seconds, 1e-9),
        "traces": budget,
        "shards": len(shards),
    }
    return rows, stats


def bench_rank_evaluation(
    traces: np.ndarray, pts: np.ndarray, key: bytes
) -> tuple[list[list[str]], float]:
    """Time both evaluators over the same checkpoint ladder."""
    n = traces.shape[0]
    checkpoints = geometric_checkpoints(n)

    begin = time.perf_counter()
    batch_ranks = {
        c: full_key_ranks(traces[:c], pts[:c], key) for c in checkpoints
    }
    t_batch = time.perf_counter() - begin

    begin = time.perf_counter()
    acc = OnlineCpa()
    streaming_ranks = {}
    done = 0
    for c in checkpoints:
        acc.update(traces[done:c], pts[done:c])
        done = c
        streaming_ranks[c] = acc.key_ranks(key)
    t_stream = time.perf_counter() - begin

    for c in checkpoints:
        if batch_ranks[c] != streaming_ranks[c]:
            raise AssertionError(
                f"rank mismatch at checkpoint {c}: "
                f"{batch_ranks[c]} != {streaming_ranks[c]}"
            )

    speedup = t_batch / max(t_stream, 1e-9)
    volume = sum(checkpoints)
    rows = [
        ["repeated batch", f"{len(checkpoints)}", f"{volume}",
         f"{t_batch:7.3f}", "1.0x"],
        ["streaming online", f"{len(checkpoints)}", f"{n}",
         f"{t_stream:7.3f}", f"{speedup:4.1f}x"],
    ]
    stats = {
        "batch_seconds": t_batch,
        "streaming_seconds": t_stream,
        "streaming_speedup": speedup,
        "streaming_traces_per_s": n / max(t_stream, 1e-9),
        "checkpoints": len(checkpoints),
    }
    return rows, stats


def bench_store(traces: np.ndarray, pts: np.ndarray) -> tuple[list[list[str]], dict]:
    """TraceStore append + memory-mapped replay throughput."""
    n = traces.shape[0]
    chunk = 512
    with tempfile.TemporaryDirectory() as root:
        store = TraceStore.create(
            root, n_samples=traces.shape[1], block_size=16
        )
        begin = time.perf_counter()
        for i in range(0, n, chunk):
            store.append(traces[i:i + chunk], pts[i:i + chunk])
        t_append = time.perf_counter() - begin
        begin = time.perf_counter()
        acc = OnlineCpa()
        for t, p in TraceStore.open(root).iter_chunks(chunk):
            acc.update(t, p)
        t_replay = time.perf_counter() - begin
        assert acc.n_traces == n
        mb = store.nbytes() / 1e6
    rows = [
        ["store append", "-", f"{n}", f"{t_append:7.3f}",
         f"{n / t_append:6.0f}/s"],
        [f"store replay ({mb:.0f} MB)", "-", f"{n}", f"{t_replay:7.3f}",
         f"{n / t_replay:6.0f}/s"],
    ]
    stats = {
        "append_traces_per_s": n / max(t_append, 1e-9),
        "replay_traces_per_s": n / max(t_replay, 1e-9),
        "megabytes": mb,
    }
    return rows, stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--traces", type=int, default=None)
    parser.add_argument("--samples", type=int, default=None)
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail below this streaming speedup "
                             "(default: 3.0, relaxed to 1.5 with --quick)")
    parser.add_argument("--min-capture-speedup", type=float, default=None,
                        help="fail below this fast-vs-exact campaign "
                             "speedup (default: 2.0, relaxed to 1.3 with "
                             "--quick for noisy CI runners)")
    parser.add_argument("--campaign-traces", type=int, default=None,
                        help="trace budget of the RD-0 capture-mode campaigns")
    parser.add_argument("--rd2-traces", type=int, default=16_384,
                        help="trace budget of the RD-2 capture-mode "
                             "campaigns (the default is the smallest "
                             "power-of-two budget at which both modes "
                             "converge to the true reduced key)")
    parser.add_argument("--min-rd2-speedup", type=float, default=None,
                        help="fail below this fast-vs-exact RD-2 campaign "
                             "speedup (default: 2.0, relaxed to 1.5 with "
                             "--quick for noisy CI runners)")
    parser.add_argument("--ft-traces", type=int, default=None,
                        help="trace budget of the fault-tolerance overhead "
                             "comparison (default 8192, 2048 with --quick)")
    parser.add_argument("--max-ft-overhead", type=float, default=None,
                        help="fail above this fault-tolerance overhead "
                             "ratio (default: 1.05, relaxed to 1.25 with "
                             "--quick for noisy CI runners)")
    parser.add_argument("--output", default="fresh_BENCH_streaming_attack.json",
                        help="JSON trajectory path; the default is "
                             "gitignored — pass BENCH_streaming_attack.json "
                             "to refresh the committed baseline")
    args = parser.parse_args(argv)

    n = args.traces if args.traces else (4_000 if args.quick else 24_000)
    samples = args.samples if args.samples else (48 if args.quick else 160)
    floor = args.min_speedup if args.min_speedup is not None else (
        1.5 if args.quick else 3.0
    )
    capture_floor = (
        args.min_capture_speedup if args.min_capture_speedup is not None
        else (1.3 if args.quick else 2.0)
    )
    campaign_traces = args.campaign_traces if args.campaign_traces else (
        1_536 if args.quick else 2_048
    )
    rd2_floor = (
        args.min_rd2_speedup if args.min_rd2_speedup is not None
        else (1.5 if args.quick else 2.0)
    )
    ft_traces = args.ft_traces if args.ft_traces else (
        2_048 if args.quick else 8_192
    )
    ft_ceiling = (
        args.max_ft_overhead if args.max_ft_overhead is not None
        else (1.25 if args.quick else 1.05)
    )

    rng = np.random.default_rng(0xBEEF)
    key = bytes(rng.integers(0, 256, 16, dtype=np.uint8))
    traces, pts = synthetic_traces(rng, n, samples, key, noise=2.0)

    rows, rank_stats = bench_rank_evaluation(traces, pts, key)
    store_rows, store_stats = bench_store(traces, pts)
    mode_rows, mode_stats = bench_capture_modes(campaign_traces)
    rd2_rows, rd2_stats = bench_capture_modes_rd2(args.rd2_traces)
    ft_rows, ft_stats = bench_fault_tolerance(ft_traces)
    rows += store_rows + mode_rows + rd2_rows + ft_rows
    speedup = rank_stats["streaming_speedup"]
    print(format_table(
        ["evaluator", "checkpoints", "traces processed", "seconds", "rate"],
        rows,
        title=(f"Streaming vs repeated-batch rank evaluation "
               f"({n} traces x {samples} samples)"),
    ))
    print(f"\nstreaming speedup: {speedup:.1f}x (floor {floor:.1f}x); "
          f"checkpoint ranks identical on both paths")
    print(f"RD-0 campaign fast vs exact capture mode: "
          f"{mode_stats['speedup']:.1f}x wall clock over {campaign_traces} "
          f"traces (floor {capture_floor:.1f}x); identical recovered keys")
    print(f"RD-2 campaign fast vs exact capture mode: "
          f"{rd2_stats['speedup']:.1f}x wall clock over {args.rd2_traces} "
          f"traces (floor {rd2_floor:.1f}x); identical recovered reduced "
          f"keys")
    print(f"fault-tolerance layer overhead on a fault-free run: "
          f"{ft_stats['overhead_ratio']:.2f}x over {ft_traces} traces "
          f"(ceiling {ft_ceiling:.2f}x); checkpoint ranks identical to "
          f"the bare shard loop")

    payload = {
        "benchmark": "streaming_attack",
        "quick": bool(args.quick),
        "traces": n,
        "samples": samples,
        "rank_evaluation": rank_stats,
        "store": store_stats,
        "capture_modes": mode_stats,
        "capture_modes_rd2": rd2_stats,
        "fault_tolerance": ft_stats,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nwrote {args.output}")

    if speedup < floor:
        print("FAIL: streaming evaluation below the speedup floor",
              file=sys.stderr)
        return 1
    if mode_stats["speedup"] < capture_floor:
        print("FAIL: fast capture mode below the campaign speedup floor",
              file=sys.stderr)
        return 1
    if rd2_stats["speedup"] < rd2_floor:
        print("FAIL: RD-2 fast capture mode below the campaign speedup floor",
              file=sys.stderr)
        return 1
    if ft_stats["overhead_ratio"] > ft_ceiling:
        print("FAIL: fault-tolerance layer overhead above the ceiling",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
