"""Table I — pipeline parameters and dataset sizes per cipher.

Prints the paper's Table I next to this reproduction's scaled values
(windows/strides derived from the *measured* mean CO length on the
simulated platform, dataset populations scaled by the benchmark scale).
The timed kernel is the Dataset Creation block: assembling the window
database from profiling captures.
"""

from __future__ import annotations

import numpy as np

from repro.config import MEAN_CO_SAMPLES_RD4, PAPER_TABLE_I
from repro.core.dataset import build_window_dataset
from repro.evaluation import format_table
from repro.soc import SimulatedPlatform

from _bench_common import bench_config


def test_table1_parameters(benchmark):
    rows = []
    for cipher in PAPER_TABLE_I:
        paper = PAPER_TABLE_I[cipher]
        config = bench_config(cipher)
        platform = SimulatedPlatform(cipher, max_delay=4, seed=0)
        measured = platform.mean_co_samples(probes=4)
        rows.append([
            cipher,
            f"{paper.mean_length:,}",
            f"{measured:,}",
            f"{paper.n_train:,}/{config.n_train}",
            f"{paper.n_inf:,}/{config.n_inf}",
            f"{paper.stride:,}/{config.stride}",
            f"{paper.n_start_windows:,}/{config.n_start_windows}",
            f"{paper.n_rest_windows:,}/{config.n_rest_windows}",
            f"{paper.n_noise_windows:,}/{config.n_noise_windows}",
        ])
    print()
    print(format_table(
        ["cipher", "len paper", "len ours", "Ntrain p/o", "Ninf p/o",
         "s p/o", "start p/o", "rest p/o", "noise p/o"],
        rows,
        title="Table I: pipeline parameters (paper / this reproduction)",
    ))

    # Timed kernel: Dataset Creation for AES at the benchmark scale.
    config = bench_config("aes")
    platform = SimulatedPlatform("aes", max_delay=4, seed=1)
    captures = platform.capture_cipher_traces(64)
    noise = platform.capture_noise_trace(30_000)
    rng = np.random.default_rng(0)

    def build():
        return build_window_dataset(
            captures, noise, window=config.n_train,
            n_rest=256, n_noise=128, rng=rng,
            start_jitter=2 * config.stride, starts_per_trace=4,
            rest_mode="random",
        )

    dataset = benchmark(build)
    assert dataset.n_start == 256
    assert len(dataset) == 256 + 256 + 128


def test_measured_lengths_match_recorded_constants(benchmark):
    """The constants in repro.config must track the simulator."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for cipher, recorded in MEAN_CO_SAMPLES_RD4.items():
        platform = SimulatedPlatform(cipher, max_delay=4, seed=0)
        measured = platform.mean_co_samples(probes=6)
        assert abs(measured - recorded) / recorded < 0.15, (cipher, measured, recorded)
