#!/usr/bin/env python
"""Distinguisher framework benchmark: throughput + traces-to-rank-1.

For every registered distinguisher this measures, on deterministic
synthetic leaky streams (first-order leaks for cpa/dpa/lra, a two-share
masked stream for cpa2):

* **update throughput** — traces/s through chunked online accumulation
  (the per-trace cost a streaming campaign pays);
* **evaluation latency** — seconds to recover all per-byte guess scores
  from the sufficient statistics (the per-checkpoint cost);
* **traces-to-rank-1** — the budget each statistic needs on its target
  workload, walked incrementally up a geometric checkpoint ladder.

Besides the printed table the benchmark writes
``BENCH_distinguishers.json`` (override with ``--output``) so CI can track
the perf trajectory machine-readably.

Run directly (CI-sized with ``--quick``):

    PYTHONPATH=src python benchmarks/bench_distinguishers.py --quick
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.attacks.distinguishers import DistinguisherSpec
from repro.attacks.key_rank import geometric_checkpoints
from repro.attacks.leakage_models import get_leakage_model
from repro.ciphers.aes import SBOX
from repro.evaluation import format_table

_SBOX = np.asarray(SBOX, dtype=np.uint8)
_HW = np.asarray([bin(v).count("1") for v in range(256)], dtype=np.float64)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")[:8]
WINDOW1 = (2, 10)
WINDOW2 = (20, 28)


def first_order_stream(rng, n, samples, noise):
    """Traces leaking HW(SBOX[pt ^ k]) per byte at known positions."""
    pts = rng.integers(0, 256, (n, len(KEY)), dtype=np.uint8)
    traces = rng.normal(0.0, noise, (n, samples))
    for b in range(len(KEY)):
        traces[:, (3 * b) % samples] += _HW[_SBOX[pts[:, b] ^ KEY[b]]]
    return traces, pts


def masked_stream(rng, n, samples, noise):
    """Two-share masked traces: HW(v^m) and HW(SBOX[v]^m) per byte."""
    pts = rng.integers(0, 256, (n, len(KEY)), dtype=np.uint8)
    traces = rng.normal(0.0, noise, (n, samples))
    for b in range(len(KEY)):
        mask = rng.integers(0, 256, n, dtype=np.uint8)
        v = pts[:, b] ^ KEY[b]
        traces[:, WINDOW1[0] + b] += _HW[v ^ mask]
        traces[:, WINDOW2[0] + b] += _HW[_SBOX[v] ^ mask]
    return traces, pts


def configurations(quick: bool):
    """(name, spec, stream factory, budget, noise) per distinguisher."""
    scale = 1 if not quick else 2
    return [
        ("cpa", DistinguisherSpec(name="cpa"), first_order_stream,
         4000 // scale, 1.0),
        ("dpa", DistinguisherSpec(name="dpa"), first_order_stream,
         8000 // scale, 1.0),
        ("cpa2", DistinguisherSpec(name="cpa2", window1=WINDOW1,
                                   window2=WINDOW2),
         masked_stream, 8000 // scale, 0.6),
        ("lra", DistinguisherSpec(name="lra"), first_order_stream,
         4000 // scale, 1.0),
    ]


def bench_one(name, spec, stream, budget, noise, samples, chunk):
    rng = np.random.default_rng(0xBE7C)
    traces, pts = stream(rng, budget, samples, noise)

    # Warm the accumulate/flush/score paths (allocator + caches) so the
    # first configuration is not penalised relative to the others.
    warm = spec.build()
    warm.update(traces[:chunk], pts[:chunk])
    getattr(warm, "flush", lambda: None)()
    warm.guess_scores()

    # Update throughput over chunked accumulation.  Class-conditional
    # accumulators stage chunks and scatter them in bulk; the explicit
    # flush charges that staged work to the update phase it belongs to.
    acc = spec.build()
    begin = time.perf_counter()
    for lo in range(0, budget, chunk):
        acc.update(traces[lo:lo + chunk], pts[lo:lo + chunk])
    getattr(acc, "flush", lambda: None)()
    update_seconds = time.perf_counter() - begin

    # Per-checkpoint evaluation latency (scores over all bytes).
    begin = time.perf_counter()
    acc.guess_scores()
    eval_seconds = time.perf_counter() - begin

    # Traces-to-rank-1 up an incremental geometric ladder.
    ladder = geometric_checkpoints(budget, first=50)
    walker = spec.build()
    done = 0
    rank1 = None
    for point in ladder:
        walker.update(traces[done:point], pts[done:point])
        done = point
        if done < walker.min_traces:
            continue
        if all(rank == 1 for rank in walker.key_ranks(KEY)):
            rank1 = point
            break

    return {
        "update_traces_per_s": budget / update_seconds,
        "update_seconds": update_seconds,
        "eval_seconds": eval_seconds,
        "traces_to_rank1": rank1,
        "budget": budget,
        "recovered": walker.recovered_key() == KEY,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized budgets")
    parser.add_argument("--samples", type=int, default=40,
                        help="samples per synthetic trace")
    parser.add_argument("--chunk", type=int, default=256,
                        help="traces per online update chunk")
    parser.add_argument("--output", default="fresh_BENCH_distinguishers.json",
                        help="JSON trajectory path; the default is "
                             "gitignored — pass BENCH_distinguishers.json "
                             "to refresh the committed baseline")
    args = parser.parse_args()

    # Warm the cached hypothesis tables outside the timers.
    for model in ("hw", "msb", "hd"):
        get_leakage_model(model)

    results = {}
    rows = []
    for name, spec, stream, budget, noise in configurations(args.quick):
        measured = bench_one(
            name, spec, stream, budget, noise, args.samples, args.chunk
        )
        results[name] = measured
        rows.append([
            name,
            f"{measured['update_traces_per_s']:.0f}",
            f"{measured['eval_seconds'] * 1e3:.1f}",
            str(measured["traces_to_rank1"] or "x"),
            str(measured["budget"]),
        ])
        print(f"[bench] {name}: "
              f"{measured['update_traces_per_s']:.0f} traces/s, "
              f"rank 1 at {measured['traces_to_rank1']}")

    print()
    print(format_table(
        ["distinguisher", "update traces/s", "eval ms", "rank 1 at", "budget"],
        rows,
        title=f"Distinguisher framework ({len(KEY)}-byte key, "
              f"{args.samples} samples, chunk {args.chunk})",
    ))

    payload = {
        "benchmark": "distinguishers",
        "quick": bool(args.quick),
        "key_bytes": len(KEY),
        "samples": args.samples,
        "chunk": args.chunk,
        "distinguishers": results,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nwrote {args.output}")

    failed = [
        name for name, measured in results.items()
        if measured["traces_to_rank1"] is None
    ]
    if failed:
        print(f"distinguishers missing rank 1 on their target workload: "
              f"{', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
