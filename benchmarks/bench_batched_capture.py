"""Throughput: scalar vs batched trace generation (the batch-engine win).

Measures the capture paths the rest of the benchmark suite leans on:

* **profiling captures** — ``capture_cipher_traces`` batched vs the
  per-trace scalar reference loop;
* **attack sessions** — ``capture_session_trace`` (consecutive and
  noise-interleaved) batched vs scalar;
* **cipher execution alone** — vectorized ``encrypt_batch`` vs per-block
  ``encrypt``, the layer the batching removes from the critical path.

Both capture paths are bit-identical for the same seed (enforced by the
test suite), so every speedup row here is a pure implementation win.  The
profiling/session ratios are bounded below ~5x by work both paths share —
acquisition-noise and TRNG draws plus the oscilloscope pipeline — while
the cipher-execution layer itself speeds up by well over an order of
magnitude; the printed table records all of it.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.ciphers.base import BatchLeakageRecorder, LeakageRecorder
from repro.evaluation import format_table
from repro.soc import SimulatedPlatform

#: Traces per profiling-capture comparison.
BATCH_TRACES = int(os.environ.get("REPRO_BENCH_BATCH_TRACES", "192"))
#: COs per session-capture comparison.
BATCH_COS = int(os.environ.get("REPRO_BENCH_BATCH_COS", "192"))

_RESULTS: list[list[str]] = []


def _timed(fn):
    begin = time.perf_counter()
    fn()
    return time.perf_counter() - begin


def _record(label: str, count: int, t_scalar: float, t_batched: float) -> float:
    speedup = t_scalar / max(t_batched, 1e-9)
    _RESULTS.append([
        label,
        f"{count / t_scalar:8.0f}",
        f"{count / t_batched:8.0f}",
        f"{speedup:5.1f}x",
    ])
    return speedup


@pytest.mark.parametrize("cipher", ["aes", "aes_masked"])
def test_batched_profiling_capture(cipher, benchmark):
    scalar = SimulatedPlatform(cipher, max_delay=4, seed=0)
    batched = SimulatedPlatform(cipher, max_delay=4, seed=0)
    t_scalar = _timed(
        lambda: scalar.capture_cipher_traces(BATCH_TRACES, batched=False)
    )
    t_batched = benchmark.pedantic(
        lambda: _timed(lambda: batched.capture_cipher_traces(BATCH_TRACES)),
        rounds=1, iterations=1,
    )
    speedup = _record(f"profiling {cipher}", BATCH_TRACES, t_scalar, t_batched)
    assert speedup > 1.2, "batched profiling capture must beat the scalar loop"


@pytest.mark.parametrize("interleaved", [False, True],
                         ids=["consecutive", "noise"])
def test_batched_session_capture(interleaved, benchmark):
    scalar = SimulatedPlatform("aes", max_delay=4, seed=1)
    batched = SimulatedPlatform("aes", max_delay=4, seed=1)
    t_scalar = _timed(lambda: scalar.capture_session_trace(
        BATCH_COS, noise_interleaved=interleaved, batched=False))
    t_batched = benchmark.pedantic(
        lambda: _timed(lambda: batched.capture_session_trace(
            BATCH_COS, noise_interleaved=interleaved)),
        rounds=1, iterations=1,
    )
    label = "session noise" if interleaved else "session consecutive"
    speedup = _record(label, BATCH_COS, t_scalar, t_batched)
    floor = 1.05 if interleaved else 1.5  # noise apps dominate interleaved runs
    assert speedup > floor, f"batched {label} capture must beat the scalar loop"


def test_batched_cipher_execution(benchmark):
    """The layer batching vectorizes: encrypt_batch vs per-block encrypt."""
    rng = np.random.default_rng(2)
    count = BATCH_TRACES
    pts = rng.integers(0, 256, (count, 16), dtype=np.uint8)
    keys = rng.integers(0, 256, (count, 16), dtype=np.uint8)
    cipher = SimulatedPlatform("aes", max_delay=4, seed=3).cipher

    def scalar():
        for b in range(count):
            recorder = LeakageRecorder()
            cipher.encrypt(pts[b].tobytes(), keys[b].tobytes(), recorder)

    def batched():
        recorder = BatchLeakageRecorder(count)
        cipher.encrypt_batch(pts, keys, recorder)

    t_scalar = _timed(scalar)
    t_batched = benchmark.pedantic(lambda: _timed(batched),
                                   rounds=1, iterations=1)
    speedup = _record("aes encrypt (traced)", count, t_scalar, t_batched)
    assert speedup > 5.0, "vectorized encryption must dominate the Python loop"


def test_batched_capture_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(format_table(
        ["path", "scalar /s", "batched /s", "speedup"],
        _RESULTS,
        title=(f"Batched capture throughput "
               f"({BATCH_TRACES} traces / {BATCH_COS}-CO sessions)"),
    ))
