"""Table II — segmentation + CPA on AES-128 vs the state of the art.

For each random-delay configuration (RD-2, RD-4) and each scenario
(noise-interleaved, consecutive):

* the matched-filter [10] and semi-automatic [11] baselines are fitted on
  the same profiling captures and evaluated (paper: 0 % hits, CPA fails);
* this work's CNN locator is evaluated; its located COs are aligned and a
  CPA with time aggregation attacks the sub-bytes intermediate, reporting
  the number of COs needed to reach rank 1 on all 16 key bytes.

The paper's Table II: 100 % hits everywhere for the CNN, CPA succeeding
with 1 125-3 695 COs; both baselines at 0 %.  Absolute CO counts depend on
the platform (theirs: FPGA measurements; ours: simulated leakage), so the
assertions check the *shape*: baselines collapse, the CNN locates, the CPA
succeeds only after CNN alignment, and noise interleaving does not break
the attack.  The RD-0 sanity rows confirm the baselines work without the
countermeasure (i.e. their failure is caused by random delay, not by our
implementation of them).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.baselines import MatchedFilterLocator, SemiAutomaticLocator
from repro.evaluation import (
    format_table,
    run_baseline_scenario,
    run_cpa_scenario,
    run_segmentation_scenario,
)
from repro.evaluation.experiments import default_tolerance
from repro.soc import SimulatedPlatform

from _bench_common import bench_config

#: COs in each CPA session (the paper needed up to ~3.7k; the simulated
#: platform leaks more cleanly, so fewer suffice).
CPA_COS = int(os.environ.get("REPRO_BENCH_CPA_COS", "384"))

_RESULTS: list[list[str]] = []


def _baseline_rows(max_delay: int, tolerance: int) -> None:
    clone = SimulatedPlatform("aes", max_delay=max_delay, seed=0)
    profiling = clone.capture_cipher_traces(16)
    for name, locator in (
        ("[10] matched filter", MatchedFilterLocator().fit(profiling)),
        ("[11] semi-automatic", SemiAutomaticLocator().fit(profiling)),
    ):
        for interleaved in (True, False):
            stats, _, _ = run_baseline_scenario(
                locator, "aes", max_delay=max_delay, noise_interleaved=interleaved,
                tolerance=tolerance, n_cos=32, seed=910,
            )
            _RESULTS.append([
                name, f"RD-{max_delay}", "yes" if interleaved else "no",
                f"{stats.hit_rate * 100:5.1f}%", "-",
            ])
            if max_delay >= 2:
                assert stats.hit_rate <= 0.25, (
                    f"{name} should collapse under RD-{max_delay}"
                )


@pytest.mark.parametrize("max_delay", [2, 4])
def test_table2_baselines(max_delay, benchmark):
    tolerance = default_tolerance(bench_config("aes"))
    benchmark.pedantic(_baseline_rows, args=(max_delay, tolerance),
                       rounds=1, iterations=1)


def test_table2_baselines_rd0_sanity(benchmark):
    """Without random delay the baselines must work (validates them)."""
    tolerance = default_tolerance(bench_config("aes"))
    clone = SimulatedPlatform("aes", max_delay=0, seed=0)
    profiling = benchmark.pedantic(clone.capture_cipher_traces, args=(16,),
                                   rounds=1, iterations=1)
    for name, locator in (
        ("[10] matched filter", MatchedFilterLocator().fit(profiling)),
        ("[11] semi-automatic", SemiAutomaticLocator().fit(profiling)),
    ):
        stats, _, _ = run_baseline_scenario(
            locator, "aes", max_delay=0, noise_interleaved=True,
            tolerance=tolerance, n_cos=24, seed=911,
        )
        _RESULTS.append([name, "RD-0", "yes", f"{stats.hit_rate * 100:5.1f}%", "-"])
        assert stats.hit_rate >= 0.8, f"{name} must work on RD-0"


@pytest.mark.parametrize("max_delay", [2, 4])
@pytest.mark.parametrize("interleaved", [True, False], ids=["noise", "consecutive"])
def test_table2_this_work(max_delay, interleaved, locator_cache, benchmark):
    locator, _ = locator_cache("aes", max_delay)
    outcome = run_segmentation_scenario(
        locator, "aes", max_delay=max_delay, noise_interleaved=interleaved,
        n_cos=CPA_COS, seed=920 + max_delay,
    )

    def cpa():
        return run_cpa_scenario(locator, outcome.session, outcome.located, aggregate=64)

    needed = benchmark.pedantic(cpa, rounds=1, iterations=1)
    _RESULTS.append([
        "this work (CNN)", f"RD-{max_delay}", "yes" if interleaved else "no",
        f"{outcome.stats.hit_rate * 100:5.1f}%",
        str(needed) if needed is not None else "FAIL",
    ])
    print(f"\nthis work RD-{max_delay} "
          f"{'noise' if interleaved else 'consecutive'}: "
          f"{outcome.stats}; CPA traces-to-rank-1: {needed}")
    assert outcome.stats.hit_rate >= 0.5
    assert needed is not None, "CPA must succeed after CNN alignment"


def test_table2_unaligned_cpa_fails(locator_cache, benchmark):
    """Control: without locating, the CPA cannot break RD-4 traces."""
    from repro.attacks import traces_to_rank1

    locator, _ = locator_cache("aes", 4)
    target = SimulatedPlatform("aes", max_delay=4, seed=930)
    session = target.capture_session_trace(CPA_COS, noise_interleaved=False)
    # Fixed-grid cuts: the best an attacker can do without a locator.
    length = 2 * locator.config.n_inf
    grid = np.linspace(
        0, session.trace.size - length - 1, CPA_COS
    ).astype(np.int64)
    segments, kept = locator.align(session.trace, starts=grid, length=length)
    pts = np.frombuffer(
        b"".join(session.plaintexts[: segments.shape[0]]), dtype=np.uint8
    ).reshape(-1, 16)
    needed = benchmark.pedantic(
        traces_to_rank1, args=(segments, pts, session.key),
        kwargs={"aggregate": 64}, rounds=1, iterations=1,
    )
    _RESULTS.append(["no locator (grid cuts)", "RD-4", "no", "-",
                     str(needed) if needed is not None else "FAIL"])
    assert needed is None, "unaligned CPA must fail under random delay"


def test_table2_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(format_table(
        ["locator", "RD", "noise apps", "hits (%)", "CPA (N. COs)"],
        _RESULTS,
        title=f"Table II: segmentation + CPA on AES-128 ({CPA_COS} COs per CPA run)",
    ))
