#!/usr/bin/env python
"""Countermeasure-matrix evaluation benchmark: TVLA verdicts + GE curves.

Two halves, mirroring the evaluation subsystem:

* **TVLA grid** — runs the built-in fixed-vs-random matrix (unprotected,
  shuffled, clock-jittered, order-1 and order-2 masked AES) through
  :class:`~repro.evaluation.TvlaCampaign` and records, per
  configuration, the capture+update throughput and the verdict
  (``max |t|``, leak or pass).  The hiding rows must LEAK and the
  masking rows must PASS at the benchmark budget — a verdict flip is a
  correctness regression, not just a perf one.
* **guessing-entropy curve** — averages an attack GE curve over
  repetitions via :meth:`ExperimentEngine.run_ge_curve` on the
  unprotected target and records the traces-to-<0.5-bit budget.

A third section measures the **sharded parallel TVLA** path
(:class:`~repro.evaluation.ParallelTvlaCampaign`): the same budget run
inline (``workers=1``) and over a process pool, verifying the merged
t-maps are bit-identical (a mismatch is a correctness failure) and
recording the wall-clock ratio.  The ratio is reported as
``pool_vs_inline_ratio`` — deliberately *not* a ``speedup`` field, so
the baseline gate never punishes a runner with fewer cores than the
baseline host.

Besides the printed table the benchmark writes ``BENCH_tvla.json``
(override with ``--output``) so CI can track the trajectory
machine-readably.

Run directly (CI-sized with ``--quick``):

    PYTHONPATH=src python benchmarks/bench_tvla.py --quick
"""

from __future__ import annotations

import argparse
import json
import time

from repro.evaluation import TvlaCampaign, format_table
from repro.runtime import ExperimentEngine, ScenarioSpec
from repro.soc.platform import PlatformSpec

#: (label, cipher, shuffle, jitter, masking order, must leak).  Random
#: delay is left out of the hiding rows: its cumulative drift de-aligns
#: the naive sample grid, which is the attack pipeline's problem (CO
#: relocation), not TVLA's.
GRID = (
    ("unprotected", "aes", False, 0, 1, True),
    ("shuffled", "aes", True, 0, 1, True),
    ("jittered", "aes", False, 10, 1, True),
    ("masked-o1", "aes_masked", False, 0, 1, False),
    ("masked-o2", "aes_masked", False, 0, 2, False),
)


def bench_tvla(label, cipher, shuffle, jitter, order, n_per_group, seed):
    spec = PlatformSpec(
        cipher_name=cipher, max_delay=0, noise_std=1.0,
        # Jitter resamples whole traces; only the exact path supports it.
        capture_mode="exact" if jitter else "fast",
        shuffle=shuffle, jitter=jitter, masking_order=order,
    )
    campaign = TvlaCampaign(spec, seed=seed, batch_size=256)
    begin = time.perf_counter()
    result = campaign.run(n_per_group)
    seconds = time.perf_counter() - begin
    return {
        "countermeasure": campaign.countermeasure_name,
        "n_per_group": n_per_group,
        "segment_length": campaign.segment_length,
        "max_abs_t": result.max_abs_t,
        "leakage_detected": result.leakage_detected,
        "seconds": seconds,
        "traces_per_s": 2 * n_per_group / seconds,
    }


def bench_parallel_tvla(n_per_group, shard_size, workers, seed):
    """Inline vs pooled sharded TVLA: bit-identical t-maps, wall ratio."""
    import numpy as np

    from repro.evaluation import ParallelTvlaCampaign

    spec = PlatformSpec(
        cipher_name="aes", max_delay=0, noise_std=1.0, capture_mode="fast"
    )

    def run(n_workers):
        campaign = ParallelTvlaCampaign(
            spec, seed=seed, workers=n_workers, shard_size=shard_size,
            batch_size=256,
        )
        begin = time.perf_counter()
        result = campaign.run(n_per_group)
        return result, time.perf_counter() - begin

    inline, inline_s = run(1)
    pooled, pooled_s = run(workers)
    if not np.array_equal(inline.t, pooled.t):
        raise AssertionError(
            f"workers={workers} t-map differs from the inline reference"
        )
    return {
        "n_per_group": n_per_group,
        "shard_size": shard_size,
        "workers": workers,
        "inline_traces_per_s": 2 * n_per_group / inline_s,
        "pool_vs_inline_ratio": inline_s / pooled_s,
        "t_maps_identical": True,
    }


def bench_ge(repetitions, max_traces, seed):
    engine = ExperimentEngine(seed=seed, capture_mode="fast")
    begin = time.perf_counter()
    ge = engine.run_ge_curve(
        ScenarioSpec(cipher="aes", max_delay=0, seed=seed),
        max_traces=max_traces, repetitions=repetitions,
        aggregate=8, batch_size=256,
    )
    seconds = time.perf_counter() - begin
    counts, means, stds, _ = ge.curve()
    return {
        "repetitions": repetitions,
        "max_traces": max_traces,
        "final_entropy_bits": float(means[-1]),
        "final_entropy_std": float(stds[-1]),
        "traces_to_half_bit": ge.traces_to_entropy(0.5),
        "seconds": seconds,
        "rep_traces_per_s": repetitions * max_traces / seconds,
        "curve": {
            "n_traces": [int(v) for v in counts],
            "mean_bits": [round(float(v), 4) for v in means],
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized budgets")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="fresh_BENCH_tvla.json",
                        help="JSON trajectory path; the default is "
                             "gitignored — pass BENCH_tvla.json to "
                             "refresh the committed baseline")
    args = parser.parse_args()

    n_per_group = 128 if args.quick else 512
    repetitions = 5
    max_traces = 200 if args.quick else 400

    rows = []
    grid = {}
    for label, cipher, shuffle, jitter, order, must_leak in GRID:
        measured = bench_tvla(
            label, cipher, shuffle, jitter, order, n_per_group, args.seed
        )
        measured["expected_leak"] = must_leak
        grid[label] = measured
        verdict = "LEAKS" if measured["leakage_detected"] else "passes"
        flag = "" if measured["leakage_detected"] == must_leak else "  <-- FLIP"
        rows.append([
            label, measured["countermeasure"],
            f"{measured['max_abs_t']:.1f}", verdict,
            f"{measured['traces_per_s']:.0f}",
        ])
        print(f"[bench] {label} ({measured['countermeasure']}): "
              f"max |t| = {measured['max_abs_t']:.1f}, {verdict}, "
              f"{measured['traces_per_s']:.0f} traces/s{flag}")

    ge = bench_ge(repetitions, max_traces, args.seed)
    print(f"[bench] ge curve: {ge['final_entropy_bits']:.2f} bits after "
          f"{ge['max_traces']} traces x {ge['repetitions']} reps, "
          f"<0.5 bit at {ge['traces_to_half_bit']}")

    parallel = bench_parallel_tvla(
        n_per_group=n_per_group, shard_size=max(8, n_per_group // 4),
        workers=2, seed=args.seed,
    )
    print(f"[bench] parallel tvla: {parallel['workers']} workers at "
          f"{parallel['pool_vs_inline_ratio']:.2f}x the inline wall clock "
          f"({parallel['inline_traces_per_s']:.0f} traces/s inline), "
          f"t-maps bit-identical")

    print()
    print(format_table(
        ["config", "countermeasure", "max |t|", "verdict", "traces/s"],
        rows,
        title=f"TVLA grid ({n_per_group} traces per population)",
    ))

    payload = {
        "benchmark": "tvla",
        "quick": bool(args.quick),
        "n_per_group": n_per_group,
        "grid": grid,
        "guessing_entropy": ge,
        "parallel": parallel,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nwrote {args.output}")

    flips = [
        label for label, measured in grid.items()
        if measured["leakage_detected"] != measured["expected_leak"]
    ]
    if flips:
        print(f"verdict flips against the expected matrix: "
              f"{', '.join(flips)}")
        return 1
    if ge["traces_to_half_bit"] is None:
        print("guessing entropy never dropped below 0.5 bits")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
