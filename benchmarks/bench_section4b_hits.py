"""Section IV-B — segmentation hit rates per cipher and scenario.

The paper reports a 100 % hit score for every cipher, for both scenarios
(consecutive executions and noise-interleaved executions) and for both
RD-2 and RD-4.  This benchmark reruns the full inference pipeline for
every cipher under RD-4 (both scenarios) and for AES additionally under
RD-2, printing the hit table.  The timed kernel is the inference pipeline
(sliding-window classification + segmentation) on one session trace.
"""

from __future__ import annotations

import pytest

from repro.ciphers import available_ciphers
from repro.evaluation import format_table, run_segmentation_scenario

from _bench_common import BENCH_COS

_RESULTS: list[list[str]] = []


@pytest.mark.parametrize("cipher", available_ciphers())
@pytest.mark.parametrize("interleaved", [False, True], ids=["consecutive", "noise"])
def test_hits_rd4(cipher, interleaved, locator_cache, benchmark):
    locator, _ = locator_cache(cipher, 4)
    outcome = run_segmentation_scenario(
        locator, cipher, max_delay=4, noise_interleaved=interleaved,
        n_cos=BENCH_COS, seed=900,
    )

    def locate():
        return locator.locate(outcome.session.trace)

    benchmark.pedantic(locate, rounds=1, iterations=1)
    scenario = "noise" if interleaved else "consecutive"
    _RESULTS.append([
        cipher, "RD-4", scenario,
        f"{outcome.stats.hit_rate * 100:5.1f}%",
        str(outcome.stats.false_positives),
        f"{outcome.stats.mean_abs_error:.0f}",
    ])
    print(f"\n{cipher} RD-4 {scenario}: {outcome.stats} (paper: 100%)")
    # Shape expectation: the locator finds the large majority of COs.
    assert outcome.stats.hit_rate >= 0.5, f"{cipher}/{scenario} collapsed"


@pytest.mark.parametrize("interleaved", [False, True], ids=["consecutive", "noise"])
def test_hits_aes_rd2(interleaved, locator_cache, benchmark):
    locator, _ = locator_cache("aes", 2)
    outcome = run_segmentation_scenario(
        locator, "aes", max_delay=2, noise_interleaved=interleaved,
        n_cos=BENCH_COS, seed=901,
    )

    def locate():
        return locator.locate(outcome.session.trace)

    benchmark.pedantic(locate, rounds=1, iterations=1)
    scenario = "noise" if interleaved else "consecutive"
    _RESULTS.append([
        "aes", "RD-2", scenario,
        f"{outcome.stats.hit_rate * 100:5.1f}%",
        str(outcome.stats.false_positives),
        f"{outcome.stats.mean_abs_error:.0f}",
    ])
    print(f"\naes RD-2 {scenario}: {outcome.stats} (paper: 100%)")
    assert outcome.stats.hit_rate >= 0.5


def test_hits_summary(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    print(format_table(
        ["cipher", "RD", "scenario", "hits (paper: 100%)", "FPs", "mean |err|"],
        _RESULTS,
        title=f"Section IV-B: segmentation hits ({BENCH_COS} COs per scenario)",
    ))
