#!/usr/bin/env python
"""Compare a fresh ``BENCH_*.json`` against the committed baseline.

The perf-smoke CI job re-runs the ``--quick`` benchmarks and hands their
JSON output here next to the baseline committed at the repo root.  Every
numeric *throughput* field — a leaf whose name ends in ``_per_s`` or is
``speedup``/``streaming_speedup`` (higher is better) — is compared, and
any regression beyond the threshold (default 30%) emits a warning in
GitHub's ``::warning::`` annotation format.  The gate *warns* rather than
fails by default because shared CI runners are noisy; pass ``--fail`` to
turn every regression into a non-zero exit (e.g. for release branches or
a quiet benchmarking host), or ``--fail-match REGEX`` to fail only on
the machine-robust field paths (wall-clock *ratios* measured on the same
run, like the capture-mode speedups) while the absolute throughputs keep
warning.

Usage:

    python benchmarks/compare_bench.py BASELINE.json FRESH.json \
        [--threshold 0.30] [--fail] [--fail-match REGEX]
"""

from __future__ import annotations

import argparse
import json
import re
import sys

#: Leaf names treated as higher-is-better throughput metrics.
_SPEEDUP_NAMES = frozenset({"speedup", "streaming_speedup"})


def throughput_fields(payload, prefix: str = "") -> "dict[str, float]":
    """Flatten the higher-is-better numeric leaves of a bench payload."""
    fields: dict[str, float] = {}
    if isinstance(payload, dict):
        for name, value in payload.items():
            path = f"{prefix}.{name}" if prefix else name
            if isinstance(value, dict):
                fields.update(throughput_fields(value, path))
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                if name.endswith("_per_s") or name in _SPEEDUP_NAMES:
                    fields[path] = float(value)
    return fields


def compare(
    baseline: dict, fresh: dict, threshold: float
) -> "list[tuple[str, str]]":
    """``(path, message)`` for every throughput field below the gate."""
    base_fields = throughput_fields(baseline)
    fresh_fields = throughput_fields(fresh)
    regressions = []
    for path, base_value in sorted(base_fields.items()):
        current = fresh_fields.get(path)
        if current is None:
            regressions.append((
                path,
                f"{path}: present in the baseline but missing from the "
                f"fresh run",
            ))
            continue
        if base_value <= 0:
            continue
        change = current / base_value - 1.0
        if change < -threshold:
            regressions.append((
                path,
                f"{path}: {current:.0f} vs baseline {base_value:.0f} "
                f"({change * 100:+.1f}%, gate -{threshold * 100:.0f}%)",
            ))
    return regressions


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("fresh", help="freshly measured BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="regression fraction that triggers the gate")
    parser.add_argument("--fail", action="store_true",
                        help="exit non-zero on regression instead of warning")
    parser.add_argument("--fail-match", default=None, metavar="REGEX",
                        help="exit non-zero only when a regressed field "
                             "path matches (re.search); other regressions "
                             "still warn")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    if baseline.get("benchmark") != fresh.get("benchmark"):
        print(f"::warning::comparing different benchmarks: "
              f"{baseline.get('benchmark')} vs {fresh.get('benchmark')}")

    regressions = compare(baseline, fresh, args.threshold)
    watched = len(throughput_fields(baseline))
    name = baseline.get("benchmark", args.baseline)
    if not regressions:
        print(f"[compare] {name}: {watched} throughput fields within "
              f"{args.threshold * 100:.0f}% of the committed baseline")
        return 0
    failing = 0
    for path, message in regressions:
        if args.fail_match is not None and re.search(args.fail_match, path):
            failing += 1
            print(f"::error::perf regression in {name}: {message}")
        else:
            print(f"::warning::perf regression in {name}: {message}")
    print(f"[compare] {name}: {len(regressions)}/{watched} fields regressed "
          f"beyond {args.threshold * 100:.0f}%", file=sys.stderr)
    return 1 if (args.fail or failing) else 0


if __name__ == "__main__":
    raise SystemExit(main())
