"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **median filter** — Section III-D's MF block vs raw thresholding;
2. **score read-out** — the paper's observation that the *linear* FC
   output localises better than the softmax probability;
3. **N_inf < N_train** — the global-average-pooling property of
   Section IV-B (a smaller inference window still works);
4. **dense vs windowed scorer** — the reproduction's fast inference
   engine vs the literal sliding-window evaluation (identical results,
   order-of-magnitude speed difference);
5. **batched engine sweep** — both attack scenarios driven through the
   runtime :class:`~repro.runtime.ExperimentEngine` (shared locator,
   batched capture + batched locate), confirming the engine reproduces
   the per-scenario results.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.sliding_window import SlidingWindowClassifier
from repro.evaluation import format_table, match_hits
from repro.evaluation.experiments import default_tolerance
from repro.soc import SimulatedPlatform

from _bench_common import BENCH_COS


@pytest.fixture(scope="module")
def aes_setup(locator_cache):
    locator, _ = locator_cache("aes", 4)
    target = SimulatedPlatform("aes", max_delay=4, seed=940)
    session = target.capture_session_trace(BENCH_COS, noise_interleaved=True)
    result = locator.locate_result(session.trace)
    return locator, session, result


def test_ablation_median_filter(aes_setup, benchmark):
    locator, session, result = aes_setup
    tolerance = default_tolerance(locator.config)
    benchmark.pedantic(locator.starts_from_swc, args=(result.swc,),
                       rounds=1, iterations=1)
    rows = []
    for use_mf in (True, False):
        starts = locator.starts_from_swc(result.swc, use_median_filter=use_mf)
        stats = match_hits(starts, session.true_starts, tolerance)
        rows.append(["on" if use_mf else "off",
                     f"{stats.hit_rate * 100:5.1f}%", str(stats.false_positives)])
    print()
    print(format_table(["median filter", "hits", "false positives"], rows,
                       title="Ablation: segmentation median filter (AES, RD-4)"))


def test_ablation_onset_mode(aes_setup, benchmark):
    """Paper-literal rising edge vs this reproduction's peak-fraction onset."""
    locator, session, result = aes_setup
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    tolerance = default_tolerance(locator.config)
    rows = []
    for mode in ("edge", "peak_fraction"):
        starts = locator.starts_from_swc(result.swc, onset_mode=mode)
        stats = match_hits(starts, session.true_starts, tolerance)
        rows.append([mode, f"{stats.hit_rate * 100:5.1f}%",
                     str(stats.false_positives), f"{stats.mean_abs_error:.0f}"])
    print()
    print(format_table(["onset mode", "hits", "false positives", "mean |err|"], rows,
                       title="Ablation: plateau onset placement"))


def test_ablation_score_mode(aes_setup, benchmark):
    """Margin/class1 (linear) vs softmax probability read-out."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    locator, session, _ = aes_setup
    config = locator.config
    tolerance = default_tolerance(config)
    normalized = locator.calibration(session.trace)
    rows = []
    for mode, threshold in (("margin", locator.threshold), ("prob", 0.5)):
        classifier = SlidingWindowClassifier(
            locator.cnn, config.n_inf, config.stride, score_mode=mode
        )
        swc = classifier.score_trace(normalized)
        starts = locator.starts_from_swc(swc, threshold=threshold)
        stats = match_hits(starts, session.true_starts, tolerance)
        rows.append([mode, f"{stats.hit_rate * 100:5.1f}%",
                     str(stats.false_positives)])
    print()
    print(format_table(["score read-out", "hits", "false positives"], rows,
                       title="Ablation: linear score vs softmax probability"))


def test_ablation_inference_window(aes_setup, benchmark):
    """GAP lets N_inf differ from N_train (Section IV-B)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    locator, session, _ = aes_setup
    config = locator.config
    tolerance = default_tolerance(config)
    normalized = locator.calibration(session.trace)
    rows = []
    for n_inf in (config.n_train, config.n_inf, int(0.6 * config.n_inf)):
        classifier = SlidingWindowClassifier(
            locator.cnn, n_inf, config.stride, score_mode=config.score_mode
        )
        swc = classifier.score_trace(normalized)
        starts = locator.starts_from_swc(swc)
        stats = match_hits(starts, session.true_starts, tolerance)
        rows.append([str(n_inf), f"{stats.hit_rate * 100:5.1f}%",
                     str(stats.false_positives)])
    print()
    print(format_table(["N_inf", "hits", "false positives"], rows,
                       title=f"Ablation: inference window size (N_train={config.n_train})"))


def test_ablation_dense_vs_windowed_speed(aes_setup, benchmark):
    locator, session, _ = aes_setup
    config = locator.config
    normalized = locator.calibration(session.trace[:200_000])
    dense = SlidingWindowClassifier(
        locator.cnn, config.n_inf, config.stride, method="dense"
    )
    windowed = SlidingWindowClassifier(
        locator.cnn, config.n_inf, config.stride, method="windowed"
    )
    t0 = time.perf_counter()
    swc_windowed = windowed.score_trace(normalized)
    t_windowed = time.perf_counter() - t0

    swc_dense = benchmark(lambda: dense.score_trace(normalized))
    t_dense_est = t_windowed / max(benchmark.stats.stats.mean, 1e-9)
    corr = np.corrcoef(swc_windowed, swc_dense)[0, 1]
    print(f"\nwindowed: {t_windowed:.2f}s, dense: {benchmark.stats.stats.mean:.2f}s "
          f"(speedup ~{t_dense_est:.0f}x), score correlation {corr:.4f}")
    print("(the correlation gap is the documented context-bleed of the dense "
          "engine — why `windowed` is the default inference method)")
    assert corr > 0.5
    assert benchmark.stats.stats.mean < t_windowed  # dense must be faster


def test_ablation_engine_sweep(locator_cache, benchmark):
    """Both scenarios swept through the batched ExperimentEngine."""
    from repro.evaluation import format_table
    from repro.runtime import BatchPlan, ExperimentEngine, ScenarioResult

    engine = ExperimentEngine(
        locator_provider=lambda cipher, rd, _std: locator_cache(cipher, rd)[0],
    )
    plan = BatchPlan.sweep(
        ciphers=("aes",), max_delays=(4,), interleaving=(True, False),
        n_cos=BENCH_COS, base_seed=940, batch_size=max(2, BENCH_COS // 8),
    )
    results = benchmark.pedantic(engine.run, args=(plan,), rounds=1, iterations=1)
    print()
    print(format_table(
        ScenarioResult.header(), [r.row() for r in results],
        title=f"Engine sweep (AES, RD-4, batch size {plan.batch_size})",
    ))
    for result in results:
        assert result.stats.hit_rate >= 0.5, result.spec.describe()
