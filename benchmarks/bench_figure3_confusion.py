"""Figure 3 — test confusion matrices for all five ciphers under RD-4.

Trains one CNN per cipher exactly as Section IV-B describes (ad-hoc
dataset per cipher, Adam, best-validation selection) and prints the
row-normalised test confusion matrix next to the paper's values.  The
paper reports diagonals of 88-100 %; at this reproduction's dataset scale
the expectation is the same shape: strongly diagonal matrices for every
cipher.  The timed kernel is CNN inference over the held-out test set.
"""

from __future__ import annotations

import pytest

from repro.ciphers import available_ciphers
from repro.evaluation import format_table
from repro.nn.metrics import format_confusion

#: Figure 3 of the paper: (c0->c0, c0->c1, c1->c0, c1->c1) percentages.
PAPER_FIGURE_3 = {
    "aes": (99.56, 0.44, 2.70, 97.30),
    "aes_masked": (99.87, 0.13, 0.07, 99.93),
    "camellia": (99.92, 0.08, 0.00, 100.00),
    "clefia": (88.08, 11.92, 0.03, 99.97),
    "simon": (94.30, 5.70, 7.90, 92.10),
}


@pytest.mark.parametrize("cipher", available_ciphers())
def test_figure3_confusion(cipher, locator_cache, benchmark):
    locator, _ = locator_cache(cipher, 4)
    test_set = locator.test_set
    assert test_set is not None and len(test_set) > 0

    def infer():
        return locator.cnn.predict(test_set.x)

    predictions = benchmark(infer)
    from repro.nn.metrics import normalized_confusion

    matrix = normalized_confusion(test_set.y, predictions)
    paper = PAPER_FIGURE_3[cipher]
    print(f"\n--- {cipher} (RD-4) ---")
    print(format_confusion(matrix))
    print(f"paper: [[{paper[0]:.2f} {paper[1]:.2f}] [{paper[2]:.2f} {paper[3]:.2f}]]")

    # Shape expectation: strongly diagonal.  Clefia is the paper's own
    # weakest row (88.08 % c0) and has this reproduction's smallest window
    # (N_train 134), so the floor is looser there.
    c0_floor = 65.0 if cipher == "clefia" else 85.0
    assert matrix[0, 0] > c0_floor, f"{cipher}: c0 recall collapsed"
    assert matrix[1, 1] > 80.0, f"{cipher}: c1 recall collapsed"


def test_figure3_summary(locator_cache, benchmark):
    """One summary table across all ciphers (paper vs measured diagonal)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for cipher in available_ciphers():
        locator, _ = locator_cache(cipher, 4)
        matrix = locator.test_confusion()
        paper = PAPER_FIGURE_3[cipher]
        rows.append([
            cipher,
            f"{paper[0]:.2f}/{matrix[0, 0]:.2f}",
            f"{paper[3]:.2f}/{matrix[1, 1]:.2f}",
        ])
    print()
    print(format_table(
        ["cipher", "c0 diag paper/ours (%)", "c1 diag paper/ours (%)"],
        rows,
        title="Figure 3 summary: confusion diagonals, RD-4",
    ))
