"""Shared knobs for the reproduction benchmarks.

Environment overrides:

* ``REPRO_BENCH_SCALE`` — dataset scale (default ``1/32`` of Table I);
* ``REPRO_BENCH_EPOCHS`` — training epochs (default: config default);
* ``REPRO_BENCH_COS`` — COs per attack session (default 32).
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.config import default_config

BENCH_SCALE = float(eval(os.environ.get("REPRO_BENCH_SCALE", "1/32")))
BENCH_COS = int(os.environ.get("REPRO_BENCH_COS", "32"))
_EPOCHS = os.environ.get("REPRO_BENCH_EPOCHS")


def bench_config(cipher: str):
    """The benchmark pipeline configuration for one cipher."""
    config = default_config(cipher, dataset_scale=BENCH_SCALE)
    if _EPOCHS is not None:
        config = replace(config, epochs=int(_EPOCHS))
    return config
