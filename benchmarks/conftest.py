"""Shared fixtures for the reproduction benchmarks.

Training a locator is the expensive step (minutes per cipher on CPU), so
trained locators are cached per (cipher, RD) for the whole benchmark
session.  Scale knobs live in ``_bench_common.py``.
"""

from __future__ import annotations

import pytest

from repro.evaluation import train_locator

from _bench_common import bench_config


@pytest.fixture(scope="session")
def locator_cache():
    """Session-wide cache of trained locators keyed by (cipher, rd)."""
    cache: dict[tuple[str, int], tuple] = {}

    def get(cipher: str, max_delay: int):
        key = (cipher, max_delay)
        if key not in cache:
            cache[key] = train_locator(
                cipher, max_delay=max_delay, seed=0, config=bench_config(cipher)
            )
        return cache[key]

    return get
