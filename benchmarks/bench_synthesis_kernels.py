#!/usr/bin/env python
"""Fused RD-window synthesis kernel microbenchmarks.

The fast capture path runs two backend kernels per batch —
``gather_delayed_windows`` (the batched delayed-window gather that
replaced a per-trace Python loop over
:func:`repro.soc.trace_synth._gather_delayed_window`) and
``synthesize_rows`` (pulse expansion → FIR band-limit → window cut →
noise → ADC quantisation fused into one pass, replacing a chain of five
whole-matrix numpy stages).  This benchmark measures both kernels in
isolation at capture-shaped workloads, per installed backend, and also
times the scalar / unfused references they replaced so the win is
recorded next to the absolute throughput.

Each kernel result is verified element-for-element against its reference
before timing — a bit-identity failure fails the benchmark, mirroring
the property suite in ``tests/soc/test_fused_synthesis.py``.

Besides the printed table the benchmark writes ``BENCH_synthesis.json``
(override with ``--output``) so CI can track the trajectory
machine-readably against the committed baseline.

Run directly (CI runs ``--quick``):

    PYTHONPATH=src python benchmarks/bench_synthesis_kernels.py --quick
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.backend import available_backends, set_backend
from repro.evaluation import format_table
from repro.soc import RandomDelayCountermeasure, TrngModel
from repro.soc.random_delay import BatchDelayPlans
from repro.soc.trace_synth import _gather_delayed_window


def _gather_workload(seed, batch, n32, max_delay):
    """A stacked delay-plan batch plus per-row op windows."""
    cm = RandomDelayCountermeasure(max_delay, TrngModel(seed))
    plans = [cm.plan(n32) for _ in range(batch)]
    stacked = BatchDelayPlans.from_plans(plans)
    rng = np.random.default_rng(seed + 1)
    values32 = rng.integers(
        0, 1 << 32, size=(batch, n32), dtype=np.uint64, endpoint=False
    )
    kinds32 = rng.integers(0, 6, size=n32, dtype=np.int64).astype(np.uint8)
    los = rng.integers(0, n32 // 4 + 1, size=batch).astype(np.int64)
    widths = np.minimum(
        stacked.totals - los,
        rng.integers(n32 // 2, n32, size=batch),
    ).astype(np.int64)
    return plans, stacked, values32, kinds32, los, widths


def _scalar_gather(plans, values32, kinds32, los, widths):
    width = int(widths.max())
    out_values = np.empty((len(plans), width), dtype=np.uint64)
    out_kinds = np.empty((len(plans), width), dtype=np.uint8)
    for b, plan in enumerate(plans):
        lo, w = int(los[b]), int(widths[b])
        row_v, row_k = _gather_delayed_window(
            plan, values32[b], kinds32, lo, lo + w
        )
        out_values[b, :w] = row_v
        out_kinds[b, :w] = row_k
        out_values[b, w:] = row_v[-1] if w else 0
        out_kinds[b, w:] = row_k[-1] if w else 0
    return out_values, out_kinds


def bench_gather(backend, seed, batch, n32, max_delay, repeats):
    plans, stacked, values32, kinds32, los, widths = _gather_workload(
        seed, batch, n32, max_delay
    )
    args = (
        stacked.positions, values32, kinds32, stacked.dummy_values,
        stacked.dummy_kinds, stacked.dummy_bounds, los, widths,
    )
    got = backend.gather_delayed_windows(*args)   # also warms any JIT
    want = _scalar_gather(plans, values32, kinds32, los, widths)
    if not (np.array_equal(got[0], want[0])
            and np.array_equal(got[1], want[1])):
        raise AssertionError(
            f"{backend.name} gather_delayed_windows disagrees with the "
            f"scalar reference"
        )
    begin = time.perf_counter()
    for _ in range(repeats):
        backend.gather_delayed_windows(*args)
    kernel_s = (time.perf_counter() - begin) / repeats
    scalar_reps = max(1, repeats // 8)
    begin = time.perf_counter()
    for _ in range(scalar_reps):
        _scalar_gather(plans, values32, kinds32, los, widths)
    scalar_s = (time.perf_counter() - begin) / scalar_reps
    return {
        "batch": batch,
        "n32": n32,
        "max_delay": max_delay,
        "windows_per_s": batch / kernel_s,
        "scalar_windows_per_s": batch / scalar_s,
        "kernel_vs_scalar_ratio": scalar_s / kernel_s,
    }


def _synthesis_workload(seed, batch, w_ops, spp, n_out):
    rng = np.random.default_rng(seed)
    power = rng.uniform(0.0, 40.0, size=(batch, w_ops))
    widths = rng.integers(max(1, w_ops - 4), w_ops + 1, size=batch)
    offsets = rng.integers(0, spp * 3, size=batch)
    lengths = np.full(batch, n_out, dtype=np.int64)
    lengths[::7] = max(1, n_out - 5)
    noise = rng.standard_normal((batch, n_out)).astype(np.float32)
    pulse = np.linspace(1.0, 0.55, spp)
    kernel = np.asarray([0.1, 0.2, 0.4, 0.2, 0.1])
    return (power, widths.astype(np.int64), pulse, kernel,
            offsets.astype(np.int64), n_out, lengths, noise,
            48.0 / 4095, 4095)


def _unfused_synthesize(power, widths, pulse, kernel, offsets, n_out,
                        lengths, noise, lsb, max_code):
    """The pre-fusion chain of whole-matrix stages, as a timing reference."""
    batch, w_ops = power.shape
    spp = pulse.size
    analog = (power[:, :, None] * pulse[None, None, :]).reshape(batch, -1)
    total = w_ops * spp
    replicate = np.minimum(
        np.arange(total)[None, :], widths[:, None] * spp - 1
    )
    analog = np.take_along_axis(analog, replicate, axis=1)
    pad = kernel.size // 2
    padded = np.pad(analog, ((0, 0), (pad, kernel.size - 1 - pad)),
                    mode="edge")
    smooth = np.zeros_like(analog)
    for tap in range(kernel.size):
        smooth += kernel[::-1][tap] * padded[:, tap: tap + total]
    cols = np.clip(
        offsets[:, None] + np.arange(n_out)[None, :], 0, total - 1
    )
    cut = np.take_along_axis(smooth, cols, axis=1)
    cut[:, : noise.shape[1]] += noise
    out = (np.clip(np.rint(cut / lsb), 0, max_code) * lsb).astype(np.float32)
    for b in range(batch):
        out[b, lengths[b]:] = 0.0
    return out


def bench_synthesis(backend, seed, batch, w_ops, spp, n_out, repeats):
    args = _synthesis_workload(seed, batch, w_ops, spp, n_out)
    got = backend.synthesize_rows(*args)          # also warms any JIT
    want = _unfused_synthesize(*args)
    if not np.array_equal(got, want):
        raise AssertionError(
            f"{backend.name} synthesize_rows disagrees with the unfused "
            f"reference chain"
        )
    begin = time.perf_counter()
    for _ in range(repeats):
        backend.synthesize_rows(*args)
    kernel_s = (time.perf_counter() - begin) / repeats
    unfused_reps = max(1, repeats // 4)
    begin = time.perf_counter()
    for _ in range(unfused_reps):
        _unfused_synthesize(*args)
    unfused_s = (time.perf_counter() - begin) / unfused_reps
    samples = batch * n_out
    return {
        "batch": batch,
        "w_ops": w_ops,
        "spp": spp,
        "n_out": n_out,
        "samples_per_s": samples / kernel_s,
        "unfused_samples_per_s": samples / unfused_s,
        "kernel_vs_unfused_ratio": unfused_s / kernel_s,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized budgets")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="fresh_BENCH_synthesis.json",
                        help="JSON trajectory path; the default is "
                             "gitignored — pass BENCH_synthesis.json to "
                             "refresh the committed baseline")
    args = parser.parse_args()

    batch = 128 if args.quick else 512
    repeats = 30 if args.quick else 120

    backends = {}
    rows = []
    for name in available_backends():
        backend = set_backend(name)
        if backend.name != name:   # numba fell back: nothing new to time
            continue
        gather = bench_gather(
            backend, args.seed, batch=batch, n32=600, max_delay=2,
            repeats=repeats,
        )
        synthesis = bench_synthesis(
            backend, args.seed, batch=batch, w_ops=128, spp=3, n_out=320,
            repeats=repeats,
        )
        backends[name] = {"gather": gather, "synthesis": synthesis}
        rows.append([
            name, "gather",
            f"{gather['windows_per_s']:.0f} win/s",
            f"{gather['kernel_vs_scalar_ratio']:.1f}x vs scalar",
        ])
        rows.append([
            name, "synthesize_rows",
            f"{synthesis['samples_per_s'] / 1e6:.1f} Msample/s",
            f"{synthesis['kernel_vs_unfused_ratio']:.1f}x vs unfused",
        ])
        print(f"[bench] {name}: gather {gather['windows_per_s']:.0f} "
              f"windows/s ({gather['kernel_vs_scalar_ratio']:.1f}x vs the "
              f"scalar loop), synthesize "
              f"{synthesis['samples_per_s'] / 1e6:.1f} Msample/s "
              f"({synthesis['kernel_vs_unfused_ratio']:.1f}x vs the "
              f"unfused chain)")

    print()
    print(format_table(
        ["backend", "kernel", "throughput", "vs reference"],
        rows,
        title=f"Fused synthesis kernels (batch {batch})",
    ))

    payload = {
        "benchmark": "synthesis_kernels",
        "quick": bool(args.quick),
        "batch": batch,
        "backends": backends,
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
