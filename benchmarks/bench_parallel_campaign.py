#!/usr/bin/env python
"""Sharded parallel campaign vs the serial streaming campaign.

Measures the wall-clock throughput (traces/s to the final merged
checkpoint) of a :class:`~repro.runtime.parallel.ParallelCampaign` at
1/2/4 workers against the serial
:class:`~repro.runtime.campaign.AttackCampaign` on an RD-2 scenario —
random-delay jitter is where campaigns need tens of thousands of traces,
so capture throughput is the wall the parallel layer exists to move.

The serial baseline runs over the campaign's own
:class:`~repro.runtime.parallel.ShardedSegmentSource` with the identical
shard-aligned checkpoint ladder, so all configurations capture the **same
trace multiset** and must report identical per-byte key ranks at every
checkpoint — the benchmark verifies that before it reports a single
number.  Speedup therefore measures parallelism alone, not a workload
change.

Note: results depend on available cores; on a single-CPU host the worker
processes time-slice and the speedup hovers around (or below) 1x.  Pass
``--min-speedup`` to enforce a floor on multi-core machines (CI leaves it
unset).

Run directly (CI-sized with ``--quick``):

    PYTHONPATH=src python benchmarks/bench_parallel_campaign.py --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.evaluation import format_table
from repro.runtime import AttackCampaign, ParallelCampaign, PlatformCampaignSpec
from repro.soc.platform import PlatformSpec, SimulatedPlatform


def build_spec(args) -> PlatformCampaignSpec:
    """Fixed attack key + segment length, resolved once for every run."""
    probe = SimulatedPlatform("aes", max_delay=args.rd, seed=args.seed)
    return PlatformCampaignSpec(
        platform=PlatformSpec(cipher_name="aes", max_delay=args.rd),
        key=probe.random_key(),
        segment_length=probe.mean_co_samples(),
        batch_size=args.batch_size,
        attack_bytes=args.attack_bytes,
    )


def run_serial(spec, args):
    """The serial reference over the identical sharded stream + ladder."""
    schedule = ParallelCampaign(
        spec, seed=args.seed, shard_size=args.shard_size,
        aggregate=args.aggregate, rank1_patience=args.patience,
        batch_size=args.batch_size,
    )
    campaign = AttackCampaign(
        schedule.sharded_source(),
        checkpoints=schedule.checkpoints(args.traces),
        aggregate=args.aggregate,
        rank1_patience=args.patience,
        batch_size=args.batch_size,
    )
    begin = time.perf_counter()
    result = campaign.run(args.traces)
    return result, time.perf_counter() - begin


def run_parallel(spec, args, workers: int):
    campaign = ParallelCampaign(
        spec, seed=args.seed, workers=workers, shard_size=args.shard_size,
        aggregate=args.aggregate, rank1_patience=args.patience,
        batch_size=args.batch_size,
    )
    begin = time.perf_counter()
    result = campaign.run(args.traces)
    return result, time.perf_counter() - begin


def verify_checkpoints(reference, result, label: str) -> None:
    shared = min(len(reference.records), len(result.records))
    for mine, theirs in zip(result.records[:shared],
                            reference.records[:shared]):
        if mine.n_traces != theirs.n_traces or mine.ranks != theirs.ranks:
            raise AssertionError(
                f"{label}: checkpoint mismatch at {mine.n_traces} traces: "
                f"{mine.ranks} != {theirs.ranks}"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small budget for CI smoke runs")
    parser.add_argument("--traces", type=int, default=None,
                        help="trace budget (default 24576, 4096 with --quick)")
    parser.add_argument("--rd", type=int, default=2, choices=(0, 2, 4))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shard-size", type=int, default=None,
                        help="traces per shard (default: budget / 12)")
    parser.add_argument("--aggregate", type=int, default=32)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument("--patience", type=int, default=1000,
                        help="early-stop patience (default: effectively off, "
                             "so every configuration runs the full budget)")
    parser.add_argument("--attack-bytes", type=int, default=4,
                        help="leading key bytes to attack (bounds cost)")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail below this speedup at the highest worker "
                             "count (default: record only)")
    args = parser.parse_args(argv)

    args.traces = args.traces or (4096 if args.quick else 24576)
    if args.shard_size is None:
        args.shard_size = max(256, args.traces // 12)
    worker_counts = [int(w) for w in args.workers.split(",") if w.strip()]

    spec = build_spec(args)
    print(f"scenario: aes RD-{args.rd}, {args.traces} traces in "
          f"{args.shard_size}-trace shards, {spec.segment_length}-sample "
          f"segments, attacking {args.attack_bytes} key bytes "
          f"({os.cpu_count()} CPUs visible)")

    serial_result, serial_seconds = run_serial(spec, args)
    rows = [[
        "serial AttackCampaign", f"{serial_result.n_traces}",
        f"{serial_seconds:7.2f}",
        f"{serial_result.n_traces / serial_seconds:7.0f}/s", "1.00x",
    ]]
    best_speedup = 0.0
    dispatch_overhead = None
    for workers in worker_counts:
        result, seconds = run_parallel(spec, args, workers)
        verify_checkpoints(serial_result, result, f"{workers} workers")
        speedup = serial_seconds / seconds
        best_speedup = max(best_speedup, speedup)
        if workers == 1:
            # x1 runs the identical stream inline through the
            # fault-tolerant ShardExecutor: the ratio vs the serial
            # campaign is the retry layer's dispatch overhead.
            dispatch_overhead = seconds / serial_seconds
        rows.append([
            f"parallel x{workers}", f"{result.n_traces}",
            f"{seconds:7.2f}", f"{result.n_traces / seconds:7.0f}/s",
            f"{speedup:4.2f}x",
        ])
    print()
    print(format_table(
        ["campaign", "traces", "seconds", "throughput", "speedup"],
        rows,
        title="Parallel sharded campaign vs serial streaming campaign",
    ))
    final = serial_result.records[-1]
    print(f"\ncheckpoint ranks identical across all configurations "
          f"({len(serial_result.records)} checkpoints, final max rank "
          f"{final.max_rank})")
    if dispatch_overhead is not None:
        print(f"fault-tolerant dispatch overhead at workers=1: "
              f"{dispatch_overhead:.2f}x the serial campaign "
              f"(record only)")
    if args.min_speedup is not None and best_speedup < args.min_speedup:
        print(f"FAIL: best speedup {best_speedup:.2f}x below the "
              f"{args.min_speedup:.2f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
