#!/usr/bin/env python
"""Parallel sharded campaign: spawn-seeded shards, mergeable accumulators.

Demonstrates the process-parallel campaign layer end to end:

1. a campaign's trace budget is cut into deterministically seeded shards
   (:func:`~repro.runtime.parallel.plan_shards`) and fanned out over a
   process pool; each worker captures its shard on its own platform,
   accumulates it into an :class:`~repro.campaign.online.OnlineCpa`, and
   persists it to its own trace-store shard directory;
2. the parent merges the workers' sufficient statistics at every
   shard-aligned checkpoint — ``merge`` is exact algebra, so the merged
   campaign reports the *same key ranks* as a serial campaign over the
   same sharded stream, which the example verifies;
3. the run is then interrupted and *resumed* over the same store root:
   finished shards replay from disk, unfinished ones fast-forward and
   keep capturing, and the final statistics match an uninterrupted run.

The trace multiset depends only on (seed, shard size), never on the
worker count — add cores, not uncertainty.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.evaluation import format_campaign
from repro.runtime import (
    AttackCampaign,
    ParallelCampaign,
    PlatformCampaignSpec,
)
from repro.soc import SimulatedPlatform
from repro.soc.platform import PlatformSpec


def build_spec(seed: int) -> PlatformCampaignSpec:
    """Resolve the campaign-wide key and segment length once."""
    probe = SimulatedPlatform("aes", max_delay=0, seed=seed)
    return PlatformCampaignSpec(
        platform=PlatformSpec(cipher_name="aes", max_delay=0),
        key=probe.random_key(),
        segment_length=1600,
        batch_size=128,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=768)
    parser.add_argument("--interrupt-at", type=int, default=256,
                        help="budget of the interrupted first run")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shard-size", type=int, default=128)
    parser.add_argument("--aggregate", type=int, default=8)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    spec = build_spec(args.seed)
    kwargs = dict(
        shard_size=args.shard_size, aggregate=args.aggregate,
        first_checkpoint=128, rank1_patience=2, batch_size=128,
    )

    with tempfile.TemporaryDirectory() as root:
        store_root = Path(root) / "shards"

        print(f"[1/3] parallel campaign ({args.workers} workers), "
              f"interrupted at {args.interrupt_at} traces ...")
        first = ParallelCampaign(
            spec, seed=args.seed, workers=args.workers,
            store_root=store_root, **kwargs,
        )
        partial = first.run(args.interrupt_at)
        print(f"      {partial.summary()}")
        shard_dirs = sorted(store_root.glob("shard-*"))
        print(f"      {len(shard_dirs)} shard stores on disk: "
              f"{[d.name for d in shard_dirs]}")

        print("[2/3] resuming over the same store root ...")
        resumed = ParallelCampaign(
            spec, seed=args.seed, workers=args.workers,
            store_root=store_root, **kwargs,
        )
        result = resumed.run(args.traces, verbose=True)
        print()
        print(format_campaign(result))
        print()
        print(f"true key      : {result.true_key.hex()}")
        print(f"recovered key : {result.recovered_key.hex()}")
        assert result.key_recovered, "campaign should recover the key at RD-0"

        print("[3/3] cross-checking against a serial campaign over the "
              "identical sharded stream ...")
        serial = AttackCampaign(
            resumed.sharded_source(),
            checkpoints=resumed.checkpoints(args.traces),
            aggregate=args.aggregate, rank1_patience=2, batch_size=128,
        )
        reference = serial.run(args.traces)
        shared = min(len(result.records), len(reference.records))
        for mine, theirs in zip(result.records[:shared],
                                reference.records[:shared]):
            assert mine.ranks == theirs.ranks, (mine, theirs)
        print(f"      per-byte ranks identical at all {shared} shared "
              f"checkpoints — merging loses nothing")


if __name__ == "__main__":
    main()
