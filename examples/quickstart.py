#!/usr/bin/env python
"""Quickstart: train a CO locator and find encryptions in an unknown trace.

This walks the full Figure-1 workflow on the simulated platform:

1. profile a *clone* device (cipher captures with NOP prologues + a noise
   trace) under the RD-4 random-delay countermeasure;
2. train the 1D-ResNet window classifier;
3. capture an attack session on the *target* device (unknown key, COs
   interleaved with other applications);
4. locate every CO and compare against the simulator's ground truth.

Runs in a few minutes on a laptop CPU.  Use ``--fast`` for a smaller
dataset (lower hit rate, ~1 minute).
"""

from __future__ import annotations

import argparse
import time
from dataclasses import replace

from repro.config import default_config
from repro.core.locator import CryptoLocator
from repro.evaluation import match_hits
from repro.evaluation.experiments import default_tolerance
from repro.soc import SimulatedPlatform


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cipher", default="aes", help="target CO (default: aes)")
    parser.add_argument("--rd", type=int, default=4, choices=(0, 2, 4),
                        help="random-delay configuration (default: RD-4)")
    parser.add_argument("--cos", type=int, default=24,
                        help="encryptions in the attack session")
    parser.add_argument("--fast", action="store_true",
                        help="small dataset / fewer epochs")
    args = parser.parse_args()

    scale = 1 / 128 if args.fast else 1 / 32
    config = default_config(args.cipher, dataset_scale=scale)
    if args.fast:
        config = replace(config, epochs=4)
    print(f"pipeline config: N_train={config.n_train} N_inf={config.n_inf} "
          f"s={config.stride} kernel={config.kernel_size}")

    print("\n[1/3] profiling the clone device and training the CNN ...")
    clone = SimulatedPlatform(args.cipher, max_delay=args.rd, seed=0)
    locator = CryptoLocator(config, seed=1)
    t0 = time.perf_counter()
    history = locator.fit_from_platform(clone, verbose=True)
    print(f"trained in {time.perf_counter() - t0:.0f}s "
          f"(best epoch {history.best_epoch}, "
          f"threshold {locator.threshold:+.2f}, "
          f"start bias {locator.start_bias} samples)")

    print("\n[2/3] capturing an attack session on the target device ...")
    target = SimulatedPlatform(args.cipher, max_delay=args.rd, seed=1234)
    session = target.capture_session_trace(args.cos, noise_interleaved=True)
    print(f"session trace: {session.trace.size} samples, "
          f"{len(session.plaintexts)} hidden COs, {session.rd_name}")

    print("\n[3/3] locating ...")
    t0 = time.perf_counter()
    located = locator.locate(session.trace)
    print(f"located {located.size} COs in {time.perf_counter() - t0:.1f}s")

    stats = match_hits(located, session.true_starts, default_tolerance(config))
    print(f"\nscore vs ground truth: {stats}")
    print("first true starts :", session.true_starts[:6])
    print("first located     :", located[:6])


if __name__ == "__main__":
    main()
