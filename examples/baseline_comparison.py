#!/usr/bin/env python
"""Compare the deep-learning locator against the state of the art.

Reproduces the qualitative message of Table II: the matched-filter [10]
and semi-automatic [11] locators find COs perfectly well on an undefended
platform (RD-0) but collapse to 0 % the moment the random-delay
countermeasure is enabled — while the CNN locator keeps working.
"""

from __future__ import annotations

import argparse

from repro.baselines import MatchedFilterLocator, SemiAutomaticLocator
from repro.config import default_config
from repro.evaluation import (
    format_table,
    run_baseline_scenario,
    run_segmentation_scenario,
    train_locator,
)
from repro.evaluation.experiments import default_tolerance
from repro.soc import SimulatedPlatform


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cipher", default="camellia",
                        help="CO to locate (camellia is the fastest)")
    parser.add_argument("--cos", type=int, default=24)
    args = parser.parse_args()

    config = default_config(args.cipher, dataset_scale=1 / 32)
    tolerance = default_tolerance(config)
    rows = []

    for rd in (0, 2, 4):
        clone = SimulatedPlatform(args.cipher, max_delay=rd, seed=0)
        profiling = clone.capture_cipher_traces(16)

        matched = MatchedFilterLocator().fit(profiling)
        semi = SemiAutomaticLocator().fit(profiling)
        for name, baseline in (("matched filter [10]", matched),
                               ("semi-automatic [11]", semi)):
            stats, _, _ = run_baseline_scenario(
                baseline, args.cipher, max_delay=rd, noise_interleaved=True,
                tolerance=tolerance, n_cos=args.cos, seed=500 + rd,
            )
            rows.append([f"RD-{rd}", name, f"{stats.hit_rate * 100:5.1f}%",
                         str(stats.false_positives)])

        print(f"training the CNN locator for RD-{rd} ...")
        locator, _ = train_locator(args.cipher, max_delay=rd, seed=0, config=config)
        outcome = run_segmentation_scenario(
            locator, args.cipher, max_delay=rd, noise_interleaved=True,
            n_cos=args.cos, seed=500 + rd,
        )
        rows.append([f"RD-{rd}", "this work (CNN)",
                     f"{outcome.stats.hit_rate * 100:5.1f}%",
                     str(outcome.stats.false_positives)])

    print()
    print(format_table(
        ["RD config", "locator", "hits", "false positives"],
        rows,
        title=f"CO localisation on {args.cipher} "
              f"(noise-interleaved, {args.cos} COs)",
    ))


if __name__ == "__main__":
    main()
