#!/usr/bin/env python
"""Locate a *protected* cipher: first-order masked AES-128.

Section IV-B highlights that the methodology "suits protected ciphers,
such as masked AES, whose side-channel traces have great variability":
every execution re-randomises its masks (and recomputes the masked S-box
table in RAM), so no two traces look alike even before random delay is
added.  This example trains a locator on the masked implementation and
shows it still finds every execution — and, as a sanity check, verifies
that a first-order CPA on the aligned masked traces does *not* recover
the key (the masking holds; only the locating problem is solved).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.attacks import full_key_ranks
from repro.config import default_config
from repro.core.locator import CryptoLocator
from repro.evaluation import match_hits
from repro.evaluation.experiments import default_tolerance
from repro.soc import SimulatedPlatform


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rd", type=int, default=4, choices=(0, 2, 4))
    parser.add_argument("--cos", type=int, default=24)
    args = parser.parse_args()

    config = default_config("aes_masked", dataset_scale=1 / 32)

    print(f"[1/3] training the locator on masked AES (RD-{args.rd}) ...")
    clone = SimulatedPlatform("aes_masked", max_delay=args.rd, seed=0)
    locator = CryptoLocator(config, seed=1)
    locator.fit_from_platform(clone)

    print("[2/3] locating masked encryptions on the target ...")
    target = SimulatedPlatform("aes_masked", max_delay=args.rd, seed=4321)
    session = target.capture_session_trace(args.cos, noise_interleaved=True)
    located = locator.locate(session.trace)
    stats = match_hits(located, session.true_starts, default_tolerance(config))
    print(f"  {stats}")

    print("[3/3] sanity check: first-order CPA on the aligned masked traces ...")
    segments, kept = locator.align(session.trace, starts=located)
    if segments.shape[0] >= 8:
        located_kept = located[kept]
        nearest = np.abs(
            located_kept[:, None] - session.true_starts[None, :]
        ).argmin(axis=1)
        pts = np.frombuffer(
            b"".join(session.plaintexts[i] for i in nearest), dtype=np.uint8
        ).reshape(-1, 16)
        ranks = full_key_ranks(segments, pts, session.key, aggregate=64)
        rank1 = sum(r == 1 for r in ranks)
        print(f"  key-byte ranks: {ranks}")
        print(f"  {rank1}/16 bytes at rank 1 — first-order masking "
              f"{'HOLDS' if rank1 < 4 else 'BROKEN?'} "
              "(locating works, the masking countermeasure still protects the key)")
    else:
        print("  not enough aligned segments for the check")


if __name__ == "__main__":
    main()
