#!/usr/bin/env python
"""Breaking masked AES: first-order CPA fails, second-order CPA wins.

The repository ships a first-order boolean-masked AES
(:mod:`repro.ciphers.masked_aes`): every sensitive intermediate is split
into two shares under fresh per-encryption masks, so **no single trace
sample** correlates with unmasked data and the classic CPA/DPA stay at
chance level forever.

This example mounts both sides of that story on the simulated platform:

1. a first-order Hamming-weight CPA over a healthy trace budget —
   recovering (essentially) zero key bytes;
2. the second-order **centred-product CPA**
   (:class:`~repro.attacks.distinguishers.SecondOrderCpa`): the
   AddRoundKey-0 output ``pt ^ k ^ m_out`` and the round-1 SubBytes
   output ``SBOX[pt ^ k] ^ m_out`` are masked by the *same* ``m_out``,
   so the product of their centred leakages co-varies with
   ``HW((pt ^ k) ^ SBOX[pt ^ k])`` — the ``hd`` leakage model — and the
   full 16-byte key falls out of a streaming campaign;
3. the same attack fanned over a sharded parallel campaign, reporting
   identical checkpoint ranks (merge exactness is distinguisher-agnostic).

The two sample windows are derived from the masked cipher's deterministic
RD-0 operation layout by
:func:`~repro.attacks.distinguishers.masked_aes_windows`.
"""

from __future__ import annotations

import argparse

from repro.attacks import CpaAttack
from repro.attacks.distinguishers import DistinguisherSpec, masked_aes_windows
from repro.evaluation import format_campaign
from repro.runtime import AttackCampaign, ParallelCampaign, PlatformCampaignSpec, PlatformSegmentSource
from repro.soc import SimulatedPlatform
from repro.soc.platform import PlatformSpec


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=2400,
                        help="trace budget for every attack")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--workers", type=int, default=2,
                        help="workers for the parallel rerun")
    args = parser.parse_args()

    window1, window2 = masked_aes_windows()
    segment_length = window2[1] + 16
    spec = DistinguisherSpec(name="cpa2", window1=window1, window2=window2)

    platform = SimulatedPlatform("aes_masked", max_delay=0, seed=args.seed)
    key = platform.random_key()
    print(f"masked AES target, key {key.hex()}")
    print(f"second-order windows: {window1} x {window2} "
          f"(AddRoundKey-0 x SubBytes-1)\n")

    # -- 1. first-order CPA: chance level ------------------------------- #
    traces, pts = platform.capture_attack_segments(
        args.traces, key=key, segment_length=segment_length
    )
    recovered = CpaAttack().recovered_key(traces, pts)
    correct = sum(a == b for a, b in zip(recovered, key))
    print(f"first-order CPA over {args.traces} traces: "
          f"{correct}/16 key bytes (masking holds)")

    # -- 2. streaming second-order campaign ----------------------------- #
    source = PlatformSegmentSource(
        SimulatedPlatform("aes_masked", max_delay=0, seed=args.seed + 1),
        key=key, segment_length=segment_length,
    )
    campaign = AttackCampaign(
        source, first_checkpoint=600, rank1_patience=1, distinguisher=spec,
    )
    result = campaign.run(args.traces)
    print()
    print(format_campaign(result))
    print(f"second-order CPA: recovered {result.recovered_key.hex()} "
          f"({'full key' if result.key_recovered else 'incomplete'})")

    # -- 3. the same attack, sharded over a process pool ---------------- #
    parallel = ParallelCampaign(
        PlatformCampaignSpec(
            platform=PlatformSpec(cipher_name="aes_masked", max_delay=0),
            key=key, segment_length=segment_length,
        ),
        seed=args.seed + 2, workers=args.workers, shard_size=600,
        rank1_patience=1, distinguisher=spec,
    )
    p_result = parallel.run(args.traces)
    print(f"\nparallel x{args.workers}: rank 1 at "
          f"{p_result.traces_to_rank1} traces, recovered "
          f"{p_result.recovered_key.hex()}")
    return 0 if result.key_recovered and p_result.key_recovered else 1


if __name__ == "__main__":
    raise SystemExit(main())
