#!/usr/bin/env python
"""Streaming attack campaign: capture → store → online CPA → early stop.

Demonstrates the campaign subsystem end to end on the simulated platform:

1. a fixed-key campaign streams capture batches into a constant-memory
   :class:`~repro.campaign.online.OnlineCpa` accumulator and an on-disk
   :class:`~repro.campaign.store.TraceStore`, evaluating key ranks at
   geometric checkpoints and stopping early once every byte holds rank 1;
2. the process then "crashes" (we simply build a new campaign object) and
   *resumes* from the half-written store — the persisted chunks are
   replayed into a fresh accumulator and capture continues where the
   store left off;
3. the recovered correlation statistics are compared against the batch
   CPA over the store's full contents, showing the streaming path is
   exact, not approximate.

Memory never grows with the trace count: a million-trace campaign holds
the same sufficient statistics as this small one.
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.attacks import CpaAttack
from repro.campaign import TraceStore
from repro.evaluation import format_campaign
from repro.runtime import AttackCampaign, PlatformSegmentSource
from repro.soc import SimulatedPlatform


def build_campaign(store_dir: Path, seed: int, aggregate: int) -> AttackCampaign:
    """A fresh campaign over (possibly pre-existing) durable storage."""
    platform = SimulatedPlatform("aes", max_delay=0, seed=seed)
    source = PlatformSegmentSource(platform, segment_length=1600)
    store = TraceStore.open_or_create(
        store_dir, n_samples=source.n_samples,
        block_size=source.block_size, key=source.true_key,
    )
    return AttackCampaign(
        source, store=store, aggregate=aggregate, rank1_patience=2
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--traces", type=int, default=600,
                        help="total trace budget")
    parser.add_argument("--interrupt-at", type=int, default=120,
                        help="traces captured before the simulated crash")
    parser.add_argument("--aggregate", type=int, default=8)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as root:
        store_dir = Path(root) / "campaign_store"

        print(f"[1/3] campaign interrupted after {args.interrupt_at} traces ...")
        first = build_campaign(store_dir, args.seed, args.aggregate)
        partial = first.run(args.interrupt_at)
        print(f"      {partial.summary()}")
        del first  # the "crash": only the on-disk store survives

        print(f"[2/3] resuming from the store and finishing the attack ...")
        resumed = build_campaign(store_dir, args.seed, args.aggregate)
        print(f"      replayed {resumed.resumed_from} stored traces")
        result = resumed.run(args.traces, verbose=True)
        print()
        print(format_campaign(result))
        print()
        print(f"true key      : {result.true_key.hex()}")
        print(f"recovered key : {result.recovered_key.hex()}")
        assert result.key_recovered, "campaign should recover the key at RD-0"

        print("[3/3] cross-checking the streaming statistics against the "
              "batch CPA ...")
        store = TraceStore.open(store_dir)
        traces, plaintexts = store.load()
        batch_key = CpaAttack(aggregate=args.aggregate).recovered_key(
            traces, plaintexts
        )
        assert batch_key == result.recovered_key
        print(f"      batch CPA over all {len(store)} stored traces agrees: "
              f"{batch_key.hex()}")


if __name__ == "__main__":
    main()
