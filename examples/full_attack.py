#!/usr/bin/env python
"""The complete attack flow of Section IV-C: locate, align, break the key.

Reproduces the paper's headline demonstration: a power trace containing
many AES-128 encryptions under an *unknown* key, protected by random
delay, is segmented by the deep-learning locator; the located COs are cut
and aligned; a CPA against the first-round S-box output then recovers the
key — something that is impossible without the alignment (the script also
shows the CPA failing on unaligned cuts).

The whole flow runs through the batch-first
:class:`~repro.runtime.ExperimentEngine`: locator training profiles the
clone via the vectorized capture path, the attack session is captured
through one batched synthesis call, and location uses the shared
sliding-window machinery.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.attacks import CpaAttack, full_key_ranks
from repro.config import default_config
from repro.evaluation import match_hits
from repro.evaluation.experiments import default_tolerance
from repro.runtime import ExperimentEngine, ScenarioSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rd", type=int, default=4, choices=(2, 4))
    parser.add_argument("--cos", type=int, default=600,
                        help="encryptions in the attack session")
    parser.add_argument("--aggregate", type=int, default=64,
                        help="CPA time-aggregation width (samples)")
    parser.add_argument("--batch-size", type=int, default=64,
                        help="traces per batched locate pass")
    args = parser.parse_args()

    config = default_config("aes", dataset_scale=1 / 32)
    engine = ExperimentEngine(seed=0, config_overrides={"aes": config})
    spec = ScenarioSpec(
        cipher="aes", max_delay=args.rd, noise_interleaved=False,
        n_cos=args.cos, seed=777,
    )

    print(f"[1/4] training the locator against an RD-{args.rd} clone ...")
    locator = engine.locator_for("aes", args.rd)

    print(f"[2/4] capturing {args.cos} encryptions under an unknown key ...")
    t0 = time.perf_counter()
    session = engine.capture_session(spec)
    print(f"  {session.trace.size} samples in {time.perf_counter() - t0:.1f}s "
          "(batched capture)")

    print("[3/4] locating and aligning ...")
    t0 = time.perf_counter()
    located = engine.locate_sessions(locator, [session], args.batch_size)[0]
    stats = match_hits(located, session.true_starts, default_tolerance(config))
    print(f"  located {located.size}/{args.cos} COs "
          f"({stats.hit_rate * 100:.1f}% hits) in {time.perf_counter() - t0:.0f}s")
    segments, kept = locator.align(session.trace, starts=located)

    # Pair each aligned segment with the plaintext of the matching true CO.
    located_kept = located[kept]
    nearest = np.abs(
        located_kept[:, None] - session.true_starts[None, :]
    ).argmin(axis=1)
    plaintexts = np.frombuffer(
        b"".join(session.plaintexts[i] for i in nearest), dtype=np.uint8
    ).reshape(-1, 16)

    print("[4/4] mounting the CPA on the sub-bytes intermediate ...")
    attack = CpaAttack(aggregate=args.aggregate)
    recovered = attack.recovered_key(segments, plaintexts)
    ranks = full_key_ranks(segments, plaintexts, session.key, aggregate=args.aggregate)
    print(f"  true key      : {session.key.hex()}")
    print(f"  recovered key : {recovered.hex()}")
    print(f"  per-byte ranks: {ranks}")
    correct = sum(a == b for a, b in zip(recovered, session.key))
    print(f"  -> {correct}/16 key bytes recovered "
          f"({'SUCCESS' if correct == 16 else 'partial'})")

    # Control experiment: the same CPA without the locator's alignment.
    print("\ncontrol: CPA on fixed-grid cuts (no locating) ...")
    grid = np.arange(0, session.trace.size - 2 * config.n_inf,
                     session.trace.size // max(args.cos, 1))[: len(session.plaintexts)]
    blind_segments, blind_kept = locator.align(session.trace, starts=grid)
    blind_pts = np.frombuffer(
        b"".join(session.plaintexts[: blind_segments.shape[0]]), dtype=np.uint8
    ).reshape(-1, 16)
    blind = CpaAttack(aggregate=args.aggregate).recovered_key(blind_segments, blind_pts)
    blind_correct = sum(a == b for a, b in zip(blind, session.key))
    print(f"  unaligned CPA recovers {blind_correct}/16 bytes "
          "(random delay defeats the attack without the locator)")


if __name__ == "__main__":
    main()
