#!/usr/bin/env python
"""Leakage assessment of the simulated platform (SNR + TVLA).

Before attacking — or before trusting a simulator — an evaluator checks
*whether* and *where* a device leaks.  This example runs the two standard
assessments on the simulated SoC:

1. **SNR** over the first AES round, classed by the Hamming weight of the
   first S-box output: the peak marks the exploitable samples;
2. **fixed-vs-random TVLA** on the unprotected and the masked AES: the
   unprotected implementation fails (|t| >> 4.5 after the key schedule),
   the masked one shows dramatically less first-order leakage.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import (
    TVLA_THRESHOLD,
    hw_byte,
    snr_by_sample,
    welch_t_by_sample,
)
from repro.ciphers.aes import SBOX
from repro.soc import SimulatedPlatform


def ascii_plot(values: np.ndarray, width: int = 72, height: int = 8) -> str:
    """Render a 1D signal as a coarse ASCII chart."""
    bins = np.array_split(values, width)
    levels = np.array([chunk.max() for chunk in bins])
    top = levels.max() if levels.max() > 0 else 1.0
    rows = []
    for row in range(height, 0, -1):
        cut = top * row / height
        rows.append("".join("#" if level >= cut else " " for level in levels))
    rows.append("-" * width)
    return "\n".join(rows)


def main() -> None:
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    sbox = np.asarray(SBOX, dtype=np.uint8)

    print("[1/2] SNR over the AES trace head, classed by HW(SBOX[pt0 ^ k0])")
    platform = SimulatedPlatform("aes", max_delay=0, seed=0)
    traces, classes = [], []
    length = 1400
    for _ in range(400):
        capture = platform.capture_cipher_trace(key=key)
        traces.append(capture.trace[capture.co_start: capture.co_start + length])
        inter = int(sbox[capture.plaintext[0] ^ key[0]])
        classes.append(int(hw_byte(np.array([inter]))[0]))
    snr = snr_by_sample(np.stack(traces), np.asarray(classes))
    print(ascii_plot(snr))
    print(f"peak SNR {snr.max():.2f} at sample {int(snr.argmax())} "
          "(the first-round S-box processing)\n")

    print("[2/2] fixed-vs-random TVLA: unprotected vs masked AES")
    for cipher in ("aes", "aes_masked"):
        platform = SimulatedPlatform(cipher, max_delay=0, seed=1)
        fixed, rand = [], []
        for _ in range(120):
            cap_f = platform.capture_cipher_trace(key=key, plaintext=bytes(16))
            cap_r = platform.capture_cipher_trace(key=key)
            fixed.append(cap_f.trace[cap_f.co_start: cap_f.co_start + length])
            rand.append(cap_r.trace[cap_r.co_start: cap_r.co_start + length])
        t = welch_t_by_sample(np.stack(fixed), np.stack(rand))
        verdict = "FAILS TVLA (leaks)" if np.abs(t).max() > TVLA_THRESHOLD else "passes"
        print(f"  {cipher:10s}: max |t| = {np.abs(t).max():6.2f} "
              f"(threshold {TVLA_THRESHOLD}) -> {verdict}")


if __name__ == "__main__":
    main()
